"""Message dispatch for the partition executive.

The dispatcher is the per-node process that drains the node's cyclic
receive buffer and routes each payload to the right consumer:

* entry/exit announcements update the barrier bookkeeping that the
  life-cycle waits on;
* application messages go to per-``(instance, tag)`` cooperation mailboxes;
* signalling messages go to the frame's signal coordinator (or are parked
  until the local signalling phase starts);
* every other protocol message feeds the resolution coordinator, whose
  resulting effects are executed in-line.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple, TYPE_CHECKING

from ..core.exceptions import FAILURE
from ..core.messages import (
    ApplicationMessage,
    EnterActionMessage,
    ExitReadyMessage,
    ProtocolMessage,
    ToBeSignalledMessage,
)
from ..simkernel.channels import Mailbox
from ..simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .partition import Partition


class Dispatcher:
    """Drains one node's inbox and routes payloads to their consumers."""

    def __init__(self, partition: "Partition") -> None:
        self.partition = partition
        #: Barrier bookkeeping: action instance key -> set of announced threads.
        self._entry_seen: Dict[str, Set[str]] = defaultdict(set)
        self._entry_events: Dict[str, Tuple[Set[str], Event]] = {}
        self._exit_seen: Dict[str, Set[str]] = defaultdict(set)
        self._exit_events: Dict[str, Tuple[Set[str], Event]] = {}
        #: Application cooperation mailboxes: (instance_key, tag) -> Mailbox.
        self._app_mailboxes: Dict[Tuple[str, str], Mailbox] = {}
        #: Signalling messages that arrived before the local phase started.
        self._pending_signals: Dict[str, List[ToBeSignalledMessage]] = \
            defaultdict(list)

    # ------------------------------------------------------------------
    # The dispatch process
    # ------------------------------------------------------------------
    def loop(self):
        """The dispatcher process body: drain the inbox forever."""
        partition = self.partition
        while True:
            envelope = yield partition.node.inbox.get()
            yield from self.dispatch(envelope.payload,
                                     corrupted=envelope.corrupted)

    def dispatch(self, payload, corrupted: bool = False):
        """Route one received payload (generator, used via ``yield from``).

        A corrupted signalling message is not trusted: per Section 3.4 "the
        corrupted message … can be simply treated as a failure exception",
        so the sender is recorded as proposing ƒ, which forces the whole
        group to signal ƒ.  (The resolution algorithm itself assumes
        dependable communication — Assumption 1 — so corruption of its
        messages is outside the protocol's fault model and they are
        delivered as-is.)
        """
        partition = self.partition
        if corrupted and isinstance(payload, ToBeSignalledMessage):
            partition.log.append(
                f"corrupted toBeSignalled from {payload.thread} "
                f"for {payload.action}: treated as ƒ")
            payload = ToBeSignalledMessage(payload.action, payload.thread,
                                           FAILURE, payload.round_number,
                                           instance=payload.instance)
        if isinstance(payload, EnterActionMessage):
            self._note_entry(payload)
        elif isinstance(payload, ExitReadyMessage):
            self._note_exit(payload)
        elif isinstance(payload, ApplicationMessage):
            self._route_application(payload)
        elif isinstance(payload, ToBeSignalledMessage):
            yield from self._route_signalling(payload)
        elif isinstance(payload, ProtocolMessage):
            effects = partition.coordinator.receive(payload)
            yield from partition.execute_effects(effects)
        else:
            partition.log.append(f"unhandled payload {payload!r}")

    # ------------------------------------------------------------------
    # Barrier bookkeeping (consumed by the life-cycle's entry/exit waits)
    # ------------------------------------------------------------------
    def entry_complete(self, key: str, needed: Set[str]) -> bool:
        """True if every thread in ``needed`` announced entry of ``key``."""
        return needed <= self._entry_seen[key]

    def exit_complete(self, key: str, needed: Set[str]) -> bool:
        """True if every thread in ``needed`` announced exit of ``key``."""
        return needed <= self._exit_seen[key]

    def register_entry_wait(self, key: str, needed: Set[str]) -> Event:
        """Create the event triggered when the entry barrier completes."""
        event = self.partition.kernel.event()
        self._entry_events[key] = (needed, event)
        return event

    def register_exit_wait(self, key: str, needed: Set[str]) -> Event:
        """Create the event triggered when the exit barrier completes."""
        event = self.partition.kernel.event()
        self._exit_events[key] = (needed, event)
        return event

    def clear_entry_wait(self, key: str) -> None:
        self._entry_events.pop(key, None)

    def clear_exit_wait(self, key: str) -> None:
        self._exit_events.pop(key, None)

    def _note_entry(self, message: EnterActionMessage) -> None:
        key = message.instance
        self._entry_seen[key].add(message.thread)
        waiting = self._entry_events.get(key)
        if waiting is not None:
            needed, event = waiting
            if needed <= self._entry_seen[key] and not event.triggered:
                event.succeed()

    def _note_exit(self, message: ExitReadyMessage) -> None:
        key = message.instance
        self._exit_seen[key].add(message.thread)
        waiting = self._exit_events.get(key)
        if waiting is not None:
            needed, event = waiting
            if needed <= self._exit_seen[key] and not event.triggered:
                event.succeed()

    # ------------------------------------------------------------------
    # Application cooperation mailboxes
    # ------------------------------------------------------------------
    def mailbox(self, instance_key: str, tag: str) -> Mailbox:
        """The cooperation mailbox for ``(instance_key, tag)`` (create lazily)."""
        key = (instance_key, tag)
        if key not in self._app_mailboxes:
            self._app_mailboxes[key] = Mailbox(self.partition.kernel)
        return self._app_mailboxes[key]

    def _route_application(self, message: ApplicationMessage) -> None:
        self.mailbox(message.action, message.tag).deliver(message.body)

    # ------------------------------------------------------------------
    # Per-instance bookkeeping release
    # ------------------------------------------------------------------
    def release_instance(self, instance: str) -> None:
        """Drop barrier/mailbox/parked-signal state of a concluded instance.

        Called (via :meth:`DistributedCASystem.release_instance`) when the
        workload driver retires an instance scope: a long-lived run would
        otherwise accumulate one entry/exit set, cooperation mailbox and
        pending-signal slot per instance ever served.  Keys are the
        instance key itself and any nested ``instance/...`` keys.
        """
        def matches(key: str) -> bool:
            return key == instance or key.startswith(instance + "/")

        for registry in (self._entry_seen, self._entry_events,
                         self._exit_seen, self._exit_events,
                         self._pending_signals):
            for key in [k for k in registry if matches(k)]:
                del registry[key]
        for key in [k for k in self._app_mailboxes if matches(k[0])]:
            del self._app_mailboxes[key]

    # ------------------------------------------------------------------
    # Signalling messages
    # ------------------------------------------------------------------
    def take_pending_signals(self, *keys: str) -> List[ToBeSignalledMessage]:
        """Remove and return signalling messages parked under any of ``keys``.

        The life-cycle passes both the frame's instance key and its action
        name: instance-stamped proposals park under the instance key while
        unstamped (legacy) ones park under the name.
        """
        pending: List[ToBeSignalledMessage] = []
        for key in keys:
            pending.extend(self._pending_signals.pop(key, []))
        return pending

    def _route_signalling(self, message: ToBeSignalledMessage):
        partition = self.partition
        key = message.instance or message.action
        frame = partition.find_frame(key)
        if frame is None or frame.signal_coordinator is None:
            if message.instance and \
                    message.instance in partition.coordinator.finished_instances:
                # The instance already ended here; parking the proposal
                # would keep it (and its key) forever.
                partition.log.append(
                    f"dropped stale toBeSignalled for {message.instance}")
                return
            self._pending_signals[key].append(message)
            return
        effects = frame.signal_coordinator.receive(message)
        yield from partition.execute_effects(effects)
