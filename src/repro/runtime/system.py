"""The distributed CA-action system: kernel, network, partitions, registry.

:class:`DistributedCASystem` is the main entry point of the library.  A
typical use (see ``examples/quickstart.py``) is:

1. create the system with a latency model and a :class:`RuntimeConfig`;
2. register atomic objects, action definitions and role→thread bindings;
3. spawn one program per thread;
4. ``run()`` and inspect the returned reports / collected metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .. import obs
from ..analysis.metrics import RunMetrics
from ..core.action import ActionRegistry, CAActionDefinition
from ..core.state import thread_order_key
from ..net.faults import FaultPlan
from ..net.latency import ConstantLatency, LatencyModel
from ..net.network import Network
from ..objects.transaction import Transaction, TransactionManager
from ..simkernel.kernel import Kernel
from .config import RuntimeConfig
from .partition import Partition


class SystemConfigurationError(RuntimeError):
    """Raised for inconsistent system setup (unknown threads, bindings...)."""


class DistributedCASystem:
    """A simulated distributed object system supporting CA actions.

    Parameters
    ----------
    config:
        Runtime configuration (algorithm selection, Treso/Tabo charges...).
    latency:
        Network latency model (``Tmmax`` of the experiments).
    faults:
        Optional fault-injection plan for the network.
    kernel:
        Optional pre-existing simulation kernel (a fresh one by default).
    keep_trace:
        Retain every envelope in :attr:`Network.trace` (needed for
        canonical replay traces); the default is a bounded ring.
    network:
        Optional pre-built network (a transport backend's subclass); when
        given, ``latency``/``faults``/``keep_trace`` are ignored and the
        network's kernel must be this system's kernel.
    """

    def __init__(self, config: Optional[RuntimeConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPlan] = None,
                 kernel: Optional[Kernel] = None,
                 keep_trace: bool = False,
                 network: Optional[Network] = None) -> None:
        self.config = config or RuntimeConfig()
        self.kernel = kernel or Kernel()
        if network is not None:
            if network.kernel is not self.kernel:
                raise SystemConfigurationError(
                    "pre-built network must share the system kernel")
            self.network = network
        else:
            self.network = Network(self.kernel,
                                   latency=latency or ConstantLatency(0.0),
                                   faults=faults,
                                   keep_trace=keep_trace)
        self.registry = ActionRegistry()
        self.transactions = TransactionManager(self.kernel)
        self.metrics = RunMetrics()
        self.partitions: Dict[str, Partition] = {}
        self._bindings: Dict[str, Dict[str, str]] = {}
        #: Instance-scoped bindings: scope (top-level instance key) ->
        #: action name -> role -> thread.  Installed by the workload driver
        #: so that many instances of one action definition can run
        #: concurrently on different subsets of a shared partition pool.
        self._instance_bindings: Dict[str, Dict[str, Dict[str, str]]] = {}
        self._instance_transactions: Dict[str, Transaction] = {}
        #: Scope index over :attr:`_instance_transactions`:
        #: top-level scope -> keys created for it, so
        #: :meth:`release_instance` deletes exactly an instance's own
        #: transactions instead of scanning every in-flight one.
        self._transactions_by_scope: Dict[str, List[str]] = {}
        #: Scope index over the partitions' dispatchers: top-level scope ->
        #: dispatchers holding any state for it (each registers itself on
        #: first touch, see :meth:`Dispatcher._touch_scope`), so
        #: :meth:`release_instance` sweeps exactly the participants.
        self._scope_dispatchers: Dict[str, List] = {}
        #: Resolution cache for the dispatcher/life-cycle hot path:
        #: ``scope -> action -> (binding, ordered participants)``.  Scope
        #: is the instance key's outermost segment ("" for instance-less
        #: lookups).  Entries are invalidated by :meth:`bind`,
        #: :meth:`bind_instance` and :meth:`release_instance`, so the
        #: cache never outlives the binding it was derived from.
        self._resolved_bindings: Dict[str, Dict[str, tuple]] = {}
        self._programs: List = []
        #: Observers of life-cycle events, called as ``probe(event, **data)``.
        #: The fault-space explorer's InvariantMonitor registers here; the
        #: list is empty (and the notifications free) in normal runs.
        self.probes: List[Callable[..., None]] = []
        #: The attached :class:`~repro.obs.observation.SystemObservation`,
        #: or ``None`` (the default — observability off).  Set either by an
        #: ambient ``obs.capture()`` scope via the adoption call below, or
        #: directly through :func:`repro.obs.observe_system`.
        self.observation = None
        #: Optional hook ``(instance_key, definition) -> Transaction``
        #: consulted by :meth:`transaction_for` before the local
        #: transaction manager.  The real backend installs a factory that
        #: returns remote-object proxies; ``None`` (the default) keeps the
        #: historical all-local path byte-identical.
        self.transaction_factory = None
        obs.maybe_observe(self)

    # ------------------------------------------------------------------
    # Life-cycle probes (used by the fault-space explorer)
    # ------------------------------------------------------------------
    def add_probe(self, callback: Callable[..., None]) -> None:
        """Register a life-cycle observer (see :attr:`probes`)."""
        self.probes.append(callback)

    def probe(self, event: str, **data) -> None:
        """Notify every registered observer of one life-cycle event."""
        for callback in self.probes:
            callback(event, **data)

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    def add_thread(self, name: str) -> Partition:
        """Create a participating thread (and its node/partition)."""
        if name in self.partitions:
            raise SystemConfigurationError(f"thread {name!r} already exists")
        partition = Partition(self, name)
        self.partitions[name] = partition
        return partition

    def add_threads(self, names: Iterable[str]) -> List[Partition]:
        """Create several threads at once."""
        return [self.add_thread(name) for name in names]

    def define_action(self, definition: CAActionDefinition) -> CAActionDefinition:
        """Register a CA action definition."""
        return self.registry.register(definition)

    def bind(self, action: str, roles_to_threads: Dict[str, str]) -> None:
        """Declare which thread performs which role of ``action``.

        Every thread mentioned must already exist, and every role of the
        action must be covered exactly once.
        """
        definition = self.registry.get(action)
        missing_roles = set(definition.role_names) - set(roles_to_threads)
        if missing_roles:
            raise SystemConfigurationError(
                f"binding for {action!r} misses roles {sorted(missing_roles)}")
        unknown_roles = set(roles_to_threads) - set(definition.role_names)
        if unknown_roles:
            raise SystemConfigurationError(
                f"binding for {action!r} names unknown roles {sorted(unknown_roles)}")
        for thread in roles_to_threads.values():
            if thread not in self.partitions:
                raise SystemConfigurationError(
                    f"binding for {action!r} names unknown thread {thread!r}")
        self._bindings[action] = dict(roles_to_threads)
        # Scoped lookups fall back to the action-level binding, so every
        # cached resolution of this action may now be stale.
        for scoped in self._resolved_bindings.values():
            scoped.pop(action, None)

    def bind_instance(self, instance: str, action: str,
                      roles_to_threads: Dict[str, str]) -> None:
        """Bind the roles of ``action`` for one particular *instance*.

        ``instance`` is the instance key of the outermost action of the
        instance's nesting scope (nested instance keys extend it with
        ``/...`` segments and resolve through the same scope).  The binding
        is validated exactly like :meth:`bind` but only applies to that
        scope, so several instances of the same action definition can run
        concurrently on different threads of a shared pool.  Release the
        scope with :meth:`release_instance` once the instance concluded.
        """
        if not instance:
            raise SystemConfigurationError("instance key must be non-empty")
        definition = self.registry.get(action)
        missing_roles = set(definition.role_names) - set(roles_to_threads)
        if missing_roles:
            raise SystemConfigurationError(
                f"instance binding for {action!r} misses roles "
                f"{sorted(missing_roles)}")
        unknown_roles = set(roles_to_threads) - set(definition.role_names)
        if unknown_roles:
            raise SystemConfigurationError(
                f"instance binding for {action!r} names unknown roles "
                f"{sorted(unknown_roles)}")
        for thread in roles_to_threads.values():
            if thread not in self.partitions:
                raise SystemConfigurationError(
                    f"instance binding for {action!r} names unknown thread "
                    f"{thread!r}")
        scope = instance.split("/", 1)[0]
        self._instance_bindings.setdefault(scope, {})[action] = \
            dict(roles_to_threads)
        scoped = self._resolved_bindings.get(scope)
        if scoped is not None:
            scoped.pop(action, None)

    def binding(self, action: str, instance: str = "") -> Dict[str, str]:
        """The role→thread binding of ``action``.

        With a non-empty ``instance`` key, an instance-scoped binding (see
        :meth:`bind_instance`) takes precedence over the action-level one;
        the scope is the key's outermost segment, so nested instances
        resolve through their top-level instance's bindings.
        """
        if instance:
            scoped = self._instance_bindings.get(instance.split("/", 1)[0])
            if scoped is not None and action in scoped:
                return scoped[action]
        try:
            return self._bindings[action]
        except KeyError:
            raise SystemConfigurationError(
                f"action {action!r} has no role binding") from None

    def resolved_binding(self, action: str, instance: str = "",
                         ) -> "tuple[Dict[str, str], tuple]":
        """The binding of ``action`` plus its ordered participant tuple.

        Resolution is exactly :meth:`binding` followed by the protocols'
        canonical participant ordering (distinct bound threads, natural
        thread order), memoized per ``(action, scope)`` — the life-cycle
        performs it once per executed action instance, which makes it one
        of the runtime's hottest lookups under traffic.
        """
        cut = instance.find("/")
        scope = instance if cut < 0 else instance[:cut]
        scoped = self._resolved_bindings.get(scope)
        if scoped is None:
            scoped = self._resolved_bindings[scope] = {}
        cached = scoped.get(action)
        if cached is None:
            binding = self.binding(action, instance)
            participants = tuple(sorted(set(binding.values()),
                                        key=thread_order_key))
            cached = scoped[action] = (binding, participants)
        return cached

    def release_instance(self, instance: str) -> None:
        """Drop per-instance state of a concluded instance scope.

        Releases the scope's role bindings, its (finished) transactions
        and every partition's dispatcher bookkeeping (entry/exit barrier
        sets, cooperation mailboxes, parked signalling proposals) — a
        long-lived workload would otherwise accumulate all of those per
        instance ever served.  The coordinators' ``finished_instances``
        sets deliberately survive: they are what lets a *late* message of
        the released instance be recognised as stale and dropped.
        """
        scope = instance.split("/", 1)[0]
        self._instance_bindings.pop(scope, None)
        self._resolved_bindings.pop(scope, None)
        for key in self._transactions_by_scope.pop(scope, ()):
            self._instance_transactions.pop(key, None)
        for dispatcher in self._scope_dispatchers.pop(scope, ()):
            dispatcher.release_instance(scope)

    def note_scope_dispatcher(self, scope: str, dispatcher) -> None:
        """Register ``dispatcher`` as holding state for ``scope``.

        Called by each dispatcher on its first touch of a scope; the index
        lets :meth:`release_instance` visit only the dispatchers that
        actually participated in the instance.
        """
        self._scope_dispatchers.setdefault(scope, []).append(dispatcher)

    def create_object(self, name: str, initial_state=None, invariant=None):
        """Create and register an external atomic object."""
        return self.transactions.create_object(name, initial_state, invariant)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def spawn(self, thread: str, program: Callable) -> "object":
        """Start ``program`` (generator function of a ProgramContext) on ``thread``."""
        if thread not in self.partitions:
            raise SystemConfigurationError(f"unknown thread {thread!r}")
        process = self.partitions[thread].run_program(program)
        self._programs.append(process)
        return process

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation until quiescence (or until a given time)."""
        self.kernel.run(until=until)

    def run_to_completion(self) -> List[object]:
        """Run until every spawned program has finished; return their results."""
        if not self._programs:
            raise SystemConfigurationError("no programs have been spawned")
        gate = self.kernel.all_of(self._programs)
        self.kernel.run(until=gate)
        return [process.value for process in self._programs]

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.kernel.now

    # ------------------------------------------------------------------
    # Per-instance transactions
    # ------------------------------------------------------------------
    def transaction_for(self, instance_key: str,
                        definition: CAActionDefinition) -> Transaction:
        """The shared transaction of one action instance (created on first use)."""
        transaction = self._instance_transactions.get(instance_key)
        if transaction is None:
            factory = self.transaction_factory
            transaction = self._instance_transactions[instance_key] = \
                (factory(instance_key, definition) if factory is not None
                 else self.transactions.begin(definition.name))
            self._transactions_by_scope.setdefault(
                instance_key.split("/", 1)[0], []).append(instance_key)
        return transaction

    def __repr__(self) -> str:
        return (f"<DistributedCASystem threads={sorted(self.partitions)} "
                f"actions={len(self.registry)} algorithm={self.config.algorithm}>")
