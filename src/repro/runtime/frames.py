"""Per-thread action-execution state shared by the runtime subsystems.

The dispatcher, the effect interpreter and the action life-cycle all operate
on the same per-thread state: the stack of :class:`ActionFrame` objects, the
pending-abort record and the per-action occurrence counters.  This module
holds those data structures (and nothing else), so the behavioural modules
stay free of mutual imports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.action import CAActionDefinition
from ..core.exceptions import ExceptionDescriptor
from ..core.signalling import SignalCoordinator
from ..core.state import ActionContext
from ..objects.transaction import Transaction
from ..simkernel.events import Event
from .report import ActionReport


class AbortedByEnclosing(Exception):
    """Internal unwinding signal: a nested action was aborted from above."""

    def __init__(self, report: ActionReport) -> None:
        super().__init__(report.action)
        self.report = report


@dataclass(slots=True)
class PendingAbort:
    """Recorded abort request: which nested actions, down to which action."""

    actions: Tuple[str, ...]
    resume_action: str
    cause: Optional[ExceptionDescriptor] = None

    def covers(self, action: str) -> bool:
        return action in self.actions

    @property
    def outermost(self) -> str:
        return self.actions[-1] if self.actions else self.resume_action


@dataclass(slots=True)
class ActionFrame:
    """Per-thread runtime state of one action instance being executed."""

    action: str
    role: str
    occurrence: int
    instance_key: str
    definition: CAActionDefinition
    context: ActionContext
    transaction: Transaction
    parent: Optional["ActionFrame"] = None
    started_at: float = 0.0
    #: Becomes True as soon as any exception activity touches this action.
    exception_mode: bool = False
    #: The resolving exception, once known.
    resolved: Optional[ExceptionDescriptor] = None
    resolution_event: Optional[Event] = None
    #: Signalling phase state.
    signal_coordinator: Optional[SignalCoordinator] = None
    signal_event: Optional[Event] = None
    #: External-object exceptions already notified (deduplication).
    informed: Set[str] = field(default_factory=set)

    @property
    def parent_action(self) -> Optional[str]:
        return self.parent.action if self.parent is not None else None


class FrameStack:
    """The stack of active action frames of one thread.

    Also keeps the per-parent occurrence counters from which instance keys
    are derived, so that every cooperating thread computes the same key for
    the same joint attempt even if some earlier nested attempt was abandoned
    during recovery.
    """

    def __init__(self) -> None:
        self.frames: List[ActionFrame] = []
        self.occurrences: Dict[str, int] = defaultdict(int)

    def push(self, frame: ActionFrame) -> None:
        self.frames.append(frame)

    def remove(self, frame: ActionFrame) -> None:
        self.frames.remove(frame)

    def find(self, action: str) -> Optional[ActionFrame]:
        """The innermost frame executing ``action`` (by name or instance key)."""
        for frame in reversed(self.frames):
            if frame.action == action or frame.instance_key == action:
                return frame
        return None

    def next_instance_key(self, action: str,
                          parent: Optional[ActionFrame]) -> Tuple[int, str]:
        """Allocate the next (occurrence, instance key) pair for ``action``."""
        parent_key = parent.instance_key if parent else ""
        counter_key = f"{parent_key}|{action}"
        self.occurrences[counter_key] += 1
        occurrence = self.occurrences[counter_key]
        instance_key = (f"{parent_key}/{action}#{occurrence}" if parent_key
                        else f"{action}#{occurrence}")
        return occurrence, instance_key

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)
