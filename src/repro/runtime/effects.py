"""Effect interpretation for the partition executive.

:class:`PartitionEffectInterpreter` is the runtime's concrete
:class:`~repro.core.effects.EffectInterpreter`: it executes the effects the
coordination state machines emit against the simulated substrate — sending
messages over the network, converting :class:`ChargeTime` into kernel
timeouts, delivering resolution/signalling outcomes into action frames and
interrupting the role's normal computation (the ATC analogue).

Interrupt-style effects (``InterruptRole``, ``AbortNested``) are deferred to
the end of the current effect batch: interrupting the thread mid-batch
would race the remaining effects of the same coordinator step.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from ..core import effects as fx
from ..core.exceptions import ActionAborted, ExceptionDescriptor
from ..core.signalling import PerformUndo, SignalOutcome
from ..objects.transaction import TransactionStatus
from .frames import PendingAbort

if TYPE_CHECKING:  # pragma: no cover
    from .partition import Partition

#: A deferred interrupt request: (action, reason, for_abort).
_Interrupt = Tuple[str, Optional[ExceptionDescriptor], bool]


class PartitionEffectInterpreter(fx.EffectInterpreter):
    """Executes coordinator effects on behalf of one partition."""

    def __init__(self, partition: "Partition") -> None:
        super().__init__()
        self.partition = partition

    # ------------------------------------------------------------------
    # Batch handling: interrupts are applied once the batch completed
    # ------------------------------------------------------------------
    def begin_batch(self) -> List[_Interrupt]:
        return []

    def finish_batch(self, batch: List[_Interrupt]) -> None:
        for action, reason, for_abort in batch:
            self._request_interrupt(action, reason, for_abort)

    # ------------------------------------------------------------------
    # Per-effect handlers
    # ------------------------------------------------------------------
    def on_send_to(self, effect: fx.SendTo) -> None:
        partition = self.partition
        for recipient in effect.recipients:
            partition.system.network.send(partition.name, recipient,
                                          effect.message)

    def on_charge_time(self, effect: fx.ChargeTime):
        partition = self.partition
        duration = partition.config.charge_duration(effect.kind, effect.count)
        if duration > 0:
            yield partition.kernel.timeout(duration)

    def on_inform_objects(self, effect: fx.InformObjects) -> None:
        frame = self.partition.find_frame(effect.action)
        if frame is None:
            return
        key = effect.exception.name
        if key in frame.informed:
            return
        frame.informed.add(key)
        frame.transaction.notify_exception(key)
        if not frame.exception_mode:
            frame.exception_mode = True

    def on_interrupt_role(self, effect: fx.InterruptRole) -> None:
        self.batch.append((effect.action, effect.reason, False))

    def on_abort_nested(self, effect: fx.AbortNested) -> None:
        self.partition.pending_abort = PendingAbort(
            effect.actions, effect.resume_action, effect.cause)
        self.batch.append((effect.resume_action, effect.cause, True))

    def on_handle_resolved(self, effect: fx.HandleResolved) -> None:
        partition = self.partition
        frame = partition.find_frame(effect.action)
        if frame is None:
            partition.log.append(f"resolution for unknown frame {effect.action}")
            return
        frame.exception_mode = True
        frame.resolved = effect.exception
        # Probed per *delivery*, not per conclusion, so a duplicated or
        # divergent Commit shows up in the agreement oracle even when the
        # life-cycle only consumes one resolution.
        if partition.system.probes:
            partition.system.probe("resolved", thread=partition.name,
                                   action=frame.action,
                                   instance=frame.instance_key,
                                   exception=effect.exception,
                                   resolver=effect.resolver)
        if effect.resolver == partition.name:
            partition.system.metrics.record_resolution(
                partition.name, effect.action, effect.exception.name,
                partition.kernel.now)
        if frame.resolution_event is not None and \
                not frame.resolution_event.triggered:
            frame.resolution_event.succeed(effect.exception)

    def on_signal_outcome(self, effect: SignalOutcome) -> None:
        frame = self.partition.find_frame(effect.action)
        if frame is None:
            return
        if frame.signal_event is not None and not frame.signal_event.triggered:
            frame.signal_event.succeed(effect.exception)
        else:
            frame.signal_event = None

    def on_perform_undo(self, effect: PerformUndo):
        frame = self.partition.find_frame(effect.action)
        if frame is None:
            return
        status = frame.transaction.abort()
        successful = status is TransactionStatus.ABORTED
        if frame.signal_coordinator is not None:
            effects = frame.signal_coordinator.undo_completed(successful)
            yield from self.execute(effects)

    def on_log_event(self, effect: fx.LogEvent) -> None:
        self.partition.log.append(effect.text)

    def on_unknown(self, effect: fx.Effect) -> None:  # pragma: no cover
        self.partition.log.append(f"unknown effect {effect!r}")

    # ------------------------------------------------------------------
    # Thread interruption (the ATC analogue)
    # ------------------------------------------------------------------
    def _request_interrupt(self, action: str,
                           reason: Optional[ExceptionDescriptor],
                           for_abort: bool) -> None:
        partition = self.partition
        frame = partition.find_frame(action)
        if frame is not None:
            frame.exception_mode = True
        partition.system.metrics.record_suspension(partition.name, action,
                                                   partition.kernel.now)
        process = partition.thread_process
        if process is None or not process.is_alive:
            return
        if partition.kernel.active_process is process:
            # The thread itself is executing these effects; it will notice
            # exception_mode / pending_abort without needing an interrupt.
            return
        allowed = (partition.ABORT_INTERRUPTIBLE if for_abort or
                   partition.pending_abort is not None
                   else partition.INTERRUPTIBLE)
        if partition.status not in allowed:
            return
        if partition.interrupt_requested:
            return
        partition.interrupt_requested = True
        process.interrupt(ActionAborted(action, reason) if for_abort
                          else reason)
