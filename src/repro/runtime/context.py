"""Execution contexts handed to user code (programs, role bodies, handlers).

Two context classes exist:

* :class:`ProgramContext` — given to a top-level program running on a
  thread; it can perform (outermost) CA actions and let time pass.
* :class:`RoleContext` — given to a role body or handler while it executes
  inside a CA action; it adds intra-action cooperation (send/receive),
  access to the external objects through the action's transaction, raising
  internal exceptions, and entering nested actions.

Both are thin facades over the :class:`~repro.runtime.partition.Partition`,
so that user code never needs to touch runtime internals.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from ..core.exceptions import ExceptionDescriptor, RaisedException
from ..objects.transaction import Transaction
from .report import ActionReport

if TYPE_CHECKING:  # pragma: no cover
    from .partition import ActionFrame, Partition


class ProgramContext:
    """Context for top-level programs executing on one thread (partition)."""

    def __init__(self, partition: "Partition") -> None:
        self._partition = partition

    @property
    def thread_id(self) -> str:
        """Name of the thread (and of its node) this program runs on."""
        return self._partition.name

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._partition.kernel.now

    def delay(self, duration: float):
        """Yieldable event: let ``duration`` units of virtual time pass."""
        return self._partition.kernel.timeout(duration)

    def perform_action(self, action: str, role: str,
                       instance: Optional[str] = None) -> Generator:
        """Perform (the thread's role of) a top-level CA action.

        Use as ``report = yield from ctx.perform_action("A", role="r1")``.
        Returns an :class:`~repro.runtime.report.ActionReport`.

        ``instance`` optionally supplies an explicit, globally allocated
        instance key (all participants of the same joint attempt must pass
        the same key) — this is how the workload driver overlaps many
        instances of one action definition over a shared partition pool.
        """
        return self._partition.execute_action(action, role, instance=instance)

    def __repr__(self) -> str:
        return f"<ProgramContext {self.thread_id}>"


class RoleContext(ProgramContext):
    """Context for a role body (or exception handler) inside a CA action."""

    def __init__(self, partition: "Partition", frame: "ActionFrame") -> None:
        super().__init__(partition)
        self._frame = frame

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def action(self) -> str:
        """Name of the CA action this role is participating in."""
        return self._frame.action

    @property
    def role(self) -> str:
        """Name of the role this thread performs in the action."""
        return self._frame.role

    @property
    def instance(self) -> str:
        """Key of the particular action instance being executed."""
        return self._frame.instance_key

    @property
    def resolved_exception(self) -> Optional[ExceptionDescriptor]:
        """The resolving exception being handled (None during the primary attempt)."""
        return self._frame.resolved

    @property
    def transaction(self) -> Transaction:
        """The action instance's transaction on external atomic objects."""
        return self._frame.transaction

    # ------------------------------------------------------------------
    # External objects (convenience wrappers over the transaction)
    # ------------------------------------------------------------------
    def read(self, object_name: str, key: str) -> Any:
        """Transactionally read a field of an external atomic object."""
        return self._frame.transaction.read(object_name, key)

    def write(self, object_name: str, key: str, value: Any) -> None:
        """Transactionally write a field of an external atomic object."""
        self._frame.transaction.write(object_name, key, value)

    def repair(self, object_name: str, repair_function) -> None:
        """Forward-recover an external object (typically from a handler)."""
        self._frame.transaction.repair(object_name, repair_function)

    # ------------------------------------------------------------------
    # Exceptions
    # ------------------------------------------------------------------
    def raise_exception(self, exception: ExceptionDescriptor,
                        **detail: Any) -> None:
        """Raise an internal exception of the action.

        This never returns: under the termination model the primary attempt
        is abandoned and control will transfer to the appropriate handler
        once the concurrently raised exceptions have been resolved.
        """
        raise RaisedException(exception, detail)

    # ------------------------------------------------------------------
    # Cooperation between roles
    # ------------------------------------------------------------------
    def send(self, role: str, tag: str, body: Any = None) -> None:
        """Send a cooperation message to another role of the same action."""
        self._partition.send_application_message(self._frame, role, tag, body)

    def receive(self, tag: str):
        """Yieldable event: receive the next cooperation message with ``tag``.

        Use as ``value = yield ctx.receive("ready")``.
        """
        return self._partition.receive_application_message(self._frame, tag)

    # ------------------------------------------------------------------
    # Nesting
    # ------------------------------------------------------------------
    def perform_nested(self, action: str, role: str) -> Generator:
        """Enter a nested CA action from within this role.

        Use as ``report = yield from ctx.perform_nested("B", role="r2")``.
        If the nested action signals an interface exception ε to this
        context, ε is automatically raised here as an internal exception of
        the enclosing action (the model treats signalled exceptions "as if
        they are concurrently raised in the enclosing action").
        """
        return self._partition.execute_nested(self._frame, action, role)

    def __repr__(self) -> str:
        return f"<RoleContext {self.thread_id} {self.action}/{self.role}>"
