#!/usr/bin/env python3
"""Nested CA actions, abortion and exception signalling (µ and ƒ).

This example walks through the most intricate behaviour of the model
(Figures 2 and 4 of the paper):

* Scenario A — an exception raised in the *enclosing* action while two of
  its threads are inside a *nested* action: the nested action is aborted,
  its abortion handlers signal an exception, and the resolving exception
  covering both is handled jointly by all three threads.
* Scenario B — a nested action whose handler decides the work must be
  undone: the signalling algorithm coordinates the undo round, and because
  one external object cannot undo its effects, every role signals the
  failure exception ƒ instead of µ.

Run with::

    python examples/nested_recovery.py
"""

from repro.core import (
    CAActionDefinition,
    ExceptionGraph,
    HandlerMap,
    HandlerResult,
    RoleDefinition,
    internal,
)
from repro.core.exception_graph import generate_full_graph
from repro.net import ConstantLatency
from repro.runtime import ActionStatus, DistributedCASystem, RuntimeConfig

OUTER_FAULT = internal("outer_fault", "fault detected by the outer thread")
ABORT_RESIDUE = internal("abort_residue", "left over by the aborted nested action")
BAD_BATCH = internal("bad_batch", "the nested computation produced bad data")


def scenario_a() -> None:
    """Enclosing exception aborts the nested action (Figure 4)."""
    print("=== Scenario A: abortion of a nested action ===")
    system = DistributedCASystem(
        RuntimeConfig(resolution_time=0.1, abort_time=0.2),
        latency=ConstantLatency(0.1))
    system.add_threads(["T1", "T2", "T3"])

    def outer_handler(ctx):
        print(f"[{ctx.now:5.2f}] {ctx.thread_id} handles resolving exception "
              f"{ctx.resolved_exception.name!r} in {ctx.action}")
        yield ctx.delay(0.1)
        return HandlerResult.success()

    def abortion_handler(ctx):
        print(f"[{ctx.now:5.2f}] {ctx.thread_id} runs the abortion handler "
              f"of {ctx.action}")
        return HandlerResult.signal(ABORT_RESIDUE)

    def nested_work(ctx):
        yield ctx.delay(30.0)           # long work; will be interrupted
        return "never reached"

    nested = CAActionDefinition(
        "Nested",
        [RoleDefinition("n1", nested_work,
                        HandlerMap(abortion_handler=abortion_handler,
                                   default_handler=outer_handler)),
         RoleDefinition("n2", nested_work,
                        HandlerMap(abortion_handler=abortion_handler,
                                   default_handler=outer_handler))],
        graph=ExceptionGraph("Nested"), parent="Outer")

    def raising_role(ctx):
        yield ctx.delay(1.0)
        print(f"[{ctx.now:5.2f}] T1 raises {OUTER_FAULT.name!r} in Outer")
        ctx.raise_exception(OUTER_FAULT)

    def nesting_role(nested_role):
        def body(ctx):
            report = yield from ctx.perform_nested("Nested", nested_role)
            return report
        return body

    outer = CAActionDefinition(
        "Outer",
        [RoleDefinition("o1", raising_role,
                        HandlerMap(default_handler=outer_handler)),
         RoleDefinition("o2", nesting_role("n1"),
                        HandlerMap(default_handler=outer_handler)),
         RoleDefinition("o3", nesting_role("n2"),
                        HandlerMap(default_handler=outer_handler))],
        internal_exceptions=[OUTER_FAULT, ABORT_RESIDUE],
        graph=generate_full_graph([OUTER_FAULT, ABORT_RESIDUE],
                                  action_name="Outer"))

    system.define_action(outer)
    system.define_action(nested)
    system.bind("Outer", {"o1": "T1", "o2": "T2", "o3": "T3"})
    system.bind("Nested", {"n1": "T2", "n2": "T3"})

    def program(role):
        def body(ctx):
            report = yield from ctx.perform_action("Outer", role)
            return report
        return body

    system.spawn("T1", program("o1"))
    system.spawn("T2", program("o2"))
    system.spawn("T3", program("o3"))
    reports = system.run_to_completion()
    for report in reports:
        print(f"  {report.thread}: {report.status.value} "
              f"(resolved {report.resolved.name if report.resolved else '-'})")
    print(f"  abortions: {system.metrics.abortions}, "
          f"resolutions: {system.metrics.resolutions}\n")


def scenario_b() -> None:
    """Coordinated signalling of µ / ƒ after a failed undo."""
    print("=== Scenario B: undo coordination and the failure exception ===")
    system = DistributedCASystem(RuntimeConfig(resolution_time=0.05),
                                 latency=ConstantLatency(0.05))
    system.add_threads(["Worker1", "Worker2"])
    batch = system.create_object("batch", {"rows": 0})
    audit = system.create_object("audit", {"entries": 0})

    def writer_role(object_name):
        def body(ctx):
            ctx.write(object_name, "rows" if object_name == "batch" else "entries", 10)
            yield ctx.delay(0.2)
            if object_name == "batch":
                ctx.raise_exception(BAD_BATCH)
            yield ctx.delay(1.0)
        return body

    def abort_handler(ctx):
        print(f"[{ctx.now:5.2f}] {ctx.thread_id} handler: the batch is bad, "
              f"request undo (µ)")
        return HandlerResult.abort()

    action = CAActionDefinition(
        "LoadBatch",
        [RoleDefinition("w1", writer_role("batch"),
                        HandlerMap(default_handler=abort_handler)),
         RoleDefinition("w2", writer_role("audit"),
                        HandlerMap(default_handler=abort_handler))],
        internal_exceptions=[BAD_BATCH],
        graph=generate_full_graph([BAD_BATCH], action_name="LoadBatch"),
        external_objects=["batch", "audit"])
    system.define_action(action)
    system.bind("LoadBatch", {"w1": "Worker1", "w2": "Worker2"})

    def program(role):
        def body(ctx):
            report = yield from ctx.perform_action("LoadBatch", role)
            return report
        return body

    # Make the audit object unable to undo, so µ degrades to ƒ.
    audit.inject_undo_fault()
    system.spawn("Worker1", program("w1"))
    system.spawn("Worker2", program("w2"))
    reports = system.run_to_completion()
    for report in reports:
        print(f"  {report.thread}: {report.status.value}, "
              f"signalled {report.signalled.name}")
    print(f"  batch rows committed: {batch.committed_value('rows')} "
          f"(expected 0: the write was rolled back)")


def main() -> None:
    scenario_a()
    scenario_b()


if __name__ == "__main__":
    main()
