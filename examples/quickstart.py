#!/usr/bin/env python3
"""Quickstart: a two-role CA action with coordinated exception handling.

This example builds the smallest meaningful system:

* two threads (``Client`` and ``Server``) on two simulated nodes;
* one external atomic object (a bank account);
* one CA action (``Transfer``) with two roles that cooperate by message
  passing;
* an internal exception (``insufficient_funds``) raised by one role,
  resolved and handled by *both* roles, which repair the external object
  (forward error recovery) so the action still exits successfully.

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    CAActionDefinition,
    HandlerMap,
    HandlerResult,
    RoleDefinition,
    internal,
)
from repro.core.exception_graph import generate_full_graph
from repro.net import ConstantLatency
from repro.runtime import DistributedCASystem, RuntimeConfig

INSUFFICIENT_FUNDS = internal("insufficient_funds",
                              "the account cannot cover the transfer")


def build_system() -> DistributedCASystem:
    """Create the two-node system with one account object."""
    system = DistributedCASystem(
        RuntimeConfig(resolution_time=0.05),
        latency=ConstantLatency(0.1),
    )
    system.add_threads(["Client", "Server"])
    system.create_object("account", {"balance": 100, "reserved": 0},
                         invariant=lambda state: state["balance"] >= 0)
    return system


def define_transfer_action(system: DistributedCASystem, amount: int) -> None:
    """Define the Transfer CA action and bind its roles to the two threads."""

    def client_role(ctx):
        """Ask the server to reserve the amount, then wait for confirmation."""
        ctx.send("server", "reserve", amount)
        confirmed = yield ctx.receive("reserved")
        print(f"[{ctx.now:5.2f}] client: reservation confirmed = {confirmed}")
        return "transfer-requested"

    def server_role(ctx):
        """Check the balance and reserve the amount, or raise an exception."""
        requested = yield ctx.receive("reserve")
        balance = ctx.read("account", "balance")
        if balance < requested:
            # This interrupts the client too: both roles will run their
            # handler for the resolved exception.
            ctx.raise_exception(INSUFFICIENT_FUNDS)
        ctx.write("account", "balance", balance - requested)
        ctx.write("account", "reserved", requested)
        ctx.send("client", "reserved", True)
        return "transfer-reserved"

    def client_handler(ctx):
        print(f"[{ctx.now:5.2f}] client handler: transfer cancelled "
              f"({ctx.resolved_exception.name})")
        return HandlerResult.success()

    def server_handler(ctx):
        """Forward recovery: leave the account untouched but record the refusal."""
        ctx.repair("account", lambda state: {**state, "reserved": 0})
        print(f"[{ctx.now:5.2f}] server handler: account repaired "
              f"({ctx.resolved_exception.name})")
        return HandlerResult.success()

    action = CAActionDefinition(
        "Transfer",
        roles=[
            RoleDefinition("client", client_role,
                           HandlerMap({INSUFFICIENT_FUNDS: client_handler})),
            RoleDefinition("server", server_role,
                           HandlerMap({INSUFFICIENT_FUNDS: server_handler})),
        ],
        internal_exceptions=[INSUFFICIENT_FUNDS],
        graph=generate_full_graph([INSUFFICIENT_FUNDS], action_name="Transfer"),
        external_objects=["account"],
    )
    system.define_action(action)
    system.bind("Transfer", {"client": "Client", "server": "Server"})


def main() -> None:
    for amount in (60, 500):
        print(f"\n=== Transfer of {amount} ===")
        system = build_system()
        define_transfer_action(system, amount)

        def client_program(ctx):
            report = yield from ctx.perform_action("Transfer", "client")
            return report

        def server_program(ctx):
            report = yield from ctx.perform_action("Transfer", "server")
            return report

        system.spawn("Client", client_program)
        system.spawn("Server", server_program)
        client_report, server_report = system.run_to_completion()

        account = system.transactions.object("account")
        print(f"outcome: client={client_report.status.value} "
              f"server={server_report.status.value}")
        print(f"account balance after the action: "
              f"{account.committed_value('balance')}")
        print(f"exceptions raised: {system.metrics.exceptions_raised}, "
              f"resolutions: {system.metrics.resolutions}, "
              f"protocol messages: {system.network.stats.protocol_messages()}")


if __name__ == "__main__":
    main()
