#!/usr/bin/env python3
"""Production-cell case study: nested CA actions controlling a plant.

Reproduces the flavour of Section 4 of the paper: six controller threads
(table, table sensor, robot, robot sensor, press, press sensor) cooperate
through the nested actions ``Table_Press_Robot`` ⊃ ``Unload_Table`` ⊃
``Move_Loaded_Table`` and ``Table_Press_Robot`` ⊃ ``Press_Plate``, with the
exception graph of Figure 7 resolving concurrent device faults.

The script runs three campaigns:

1. a fault-free campaign (every blank is forged);
2. a campaign with recoverable faults (stuck sensor, transient motor stop);
3. a campaign with harsher faults that force interface exceptions to be
   signalled across nesting levels (the ``NCS_FAIL`` → ``T_SENSOR`` chain).

Run with::

    python examples/production_cell.py
"""

from repro.productioncell import FailureInjector, ProductionCell


def run_campaign(title: str, injector: FailureInjector, cycles: int) -> None:
    print(f"\n=== {title} ===")
    cell = ProductionCell(injector=injector)
    stats = cell.run(cycles=cycles)
    print(f"cycles attempted : {stats.cycles_attempted}")
    print(f"  succeeded      : {stats.cycles_succeeded}")
    print(f"  recovered      : {stats.cycles_recovered}")
    print(f"  skipped        : {stats.cycles_skipped}")
    print(f"  failed         : {stats.cycles_failed}")
    print(f"blanks forged    : {stats.blanks_forged}")
    print(f"exceptions raised: {stats.exceptions_raised}, "
          f"resolutions: {stats.resolutions}, abortions: {stats.abortions}")
    if stats.signalled:
        print(f"signalled        : {stats.signalled}")
    if stats.handled_log:
        print(f"handler trace    : {stats.handled_log[:8]}"
              f"{' ...' if len(stats.handled_log) > 8 else ''}")
    print(f"virtual time     : {stats.total_time:.2f}s, "
          f"faults fired: {injector.summary()}")


def main() -> None:
    run_campaign("Campaign 1: no faults", FailureInjector(), cycles=4)

    recoverable = FailureInjector()
    recoverable.schedule(2, "vm_stop")       # transient vertical-motor stop
    recoverable.schedule(3, "s_stuck")       # table sensor stuck at 0
    run_campaign("Campaign 2: recoverable faults", recoverable, cycles=4)

    harsh = FailureInjector()
    harsh.schedule(1, "vm_stop")
    harsh.schedule(1, "vm_nmove", persistent=True)   # retry fails too
    harsh.schedule(3, "l_plate", device="table")     # plate lost at hand-over
    run_campaign("Campaign 3: faults signalled across nesting levels",
                 harsh, cycles=3)


if __name__ == "__main__":
    main()
