"""Using the declarative scenario engine.

The engine (``repro.bench.engine``) maps scenario names to a runner and a
default parameter grid.  This example:

1. runs one of the paper's figures through the engine, sequentially and on
   a process pool, and shows the rows are identical;
2. runs the two new workloads (large-N sweep, multi-action churn);
3. registers a custom scenario and sweeps it.

Run with:  PYTHONPATH=src python examples/scenario_engine.py
"""

from repro.bench import (
    REGISTRY,
    ScenarioRegistry,
    figure9_grid,
    format_table,
    run_scenario,
)
from repro.bench.scenarios import run_experiment2


def main() -> None:
    print("Registered scenarios:")
    for scenario in sorted(REGISTRY, key=lambda s: s.name):
        print(f"  {scenario.name:16s} {len(scenario.grid):3d} points  "
              f"{scenario.description}")

    # -- 1. a paper figure, sequential vs parallel ---------------------
    points = figure9_grid("t_msg", values=[0.2, 0.6, 1.0], iterations=2)
    sequential = run_scenario("figure9", points=points)
    parallel = run_scenario("figure9", points=points, parallel=True)
    print("\nFigure 9 (3 points, 2 iterations), parallel == sequential:",
          parallel == sequential)
    print(format_table(sequential, title="figure9 rows"))

    # -- 2. the new workloads ------------------------------------------
    large_n = run_scenario("large_n",
                           points=[{"n_threads": n} for n in (4, 8, 16)],
                           parallel=True)
    print("\n" + format_table(
        large_n, title="large_n: message complexity beyond the paper",
        columns=["n_threads", "resolution_messages", "paper_single",
                 "total_time"]))

    churn = run_scenario("churn",
                         points=[{"n_groups": n, "iterations": 1}
                                 for n in (1, 4, 8)])
    print("\n" + format_table(
        churn, title="churn: concurrent top-level actions",
        columns=["n_groups", "total_time", "protocol_messages",
                 "messages_per_action"]))

    # -- 3. a custom scenario ------------------------------------------
    registry = ScenarioRegistry()

    @registry.register("tmmax-vs-n", grid=[{"t_msg": 0.5, "n_threads": n}
                                           for n in (3, 4, 5)])
    def tmmax_vs_n(t_msg, n_threads):
        """Completion time of the all-raise comparison scenario vs N."""
        result = run_experiment2(t_msg, 0.3, n_threads=n_threads)
        return {"n_threads": n_threads, "total_time": result.total_time,
                "protocol_messages": result.protocol_messages}

    rows = run_scenario("tmmax-vs-n", registry=registry)
    print("\n" + format_table(rows, title="custom scenario: tmmax-vs-n"))


if __name__ == "__main__":
    main()
