"""Driving traffic through the workload subsystem and reading the capacity curve.

This example:

1. builds a system with a shared pool of 8 worker partitions and drives
   open-loop Poisson traffic (one action definition, 10% faulty instances)
   through the :class:`~repro.workload.driver.WorkloadDriver`;
2. shows the same pool under closed-loop clients;
3. sweeps the offered load through the scenario engine's ``capacity``
   scenario and locates the saturation knee.

Run with:  PYTHONPATH=src python examples/workload_capacity.py
"""

from repro.bench import format_table, run_scenario
from repro.net.latency import ConstantLatency
from repro.runtime.config import RuntimeConfig
from repro.runtime.system import DistributedCASystem
from repro.workload import (
    AdmissionController,
    ClosedLoopClients,
    OpenLoopPoisson,
    TrafficActionSpec,
    WorkloadDriver,
)
from repro.workload.scenarios import saturation_knee


def build_driver(seed: int) -> WorkloadDriver:
    system = DistributedCASystem(RuntimeConfig(resolution_time=0.05),
                                 latency=ConstantLatency(0.02))
    system.add_threads([f"W{i:02d}" for i in range(1, 9)])
    driver = WorkloadDriver(
        system, seed=seed,
        admission=AdmissionController(max_in_flight=None, queue_capacity=32,
                                      policy="drop"))
    driver.add_action(TrafficActionSpec("Serve", width=2, mean_service=1.0,
                                        raise_probability=0.1))
    return driver


def main() -> None:
    # -- 1. open-loop traffic ------------------------------------------
    driver = build_driver(seed=2026)
    report = driver.run(OpenLoopPoisson(rate=2.0, count=200))
    print("Open-loop Poisson, 200 instances at offered load 2.0:")
    print(f"  completed={report.completed} dropped={report.dropped} "
          f"throughput={report.throughput:.2f}/s")
    print(f"  latency p50={report.latency['p50']:.2f} "
          f"p99={report.latency['p99']:.2f} "
          f"max concurrency={report.max_concurrency}")

    # -- 2. closed-loop clients ----------------------------------------
    driver = build_driver(seed=2027)
    report = driver.run(ClosedLoopClients(n_clients=4, think_time=0.5,
                                          jobs_per_client=25))
    print("\nClosed-loop, 4 clients x 25 jobs, think time 0.5:")
    print(f"  completed={report.completed} "
          f"throughput={report.throughput:.2f}/s "
          f"mean concurrency={report.mean_concurrency:.2f}")

    # -- 3. the capacity sweep and its knee ----------------------------
    rows = run_scenario("capacity", parallel=True)
    columns = ["offered_load", "throughput", "latency_p50", "latency_p99",
               "dropped", "max_concurrency"]
    print("\n" + format_table(
        [{c: row[c] for c in columns} for row in rows],
        title="capacity: offered load vs throughput/latency"))
    knee = saturation_knee(rows)
    print(f"\nSaturation knee: offered load {knee['knee_offered_load']} "
          f"(throughput {knee['knee_throughput']:.2f}/s, "
          f"p99 {knee['knee_latency_p99']:.2f}); "
          f"saturated loads: {knee['saturated_loads']}")


if __name__ == "__main__":
    main()
