"""Sharding the capacity workload across independent partition pools.

This example:

1. builds a deterministic :class:`~repro.workload.sharding.ShardPlan`
   and shows that the merged result is byte-identical whether the
   shards run sequentially in-process or on a process pool;
2. puts a deployment-wide admission budget (half the aggregate
   capacity) over two shards and reads the backpressure off the merged
   admission counters;
3. sweeps the offered load over a sharded deployment with
   :meth:`~repro.workload.sharding.ShardedPool.sweep`, watching the
   lease rebalancing and the per-shard and merged saturation knees.

Run with:  PYTHONPATH=src python examples/sharded_capacity.py
"""

from repro.bench import format_table
from repro.workload.sharding import (
    GlobalAdmissionController,
    ShardPlan,
    ShardedPool,
    merged_snapshot_digest,
    run_scale_point,
    scale_row,
)


def main() -> None:
    # -- 1. one plan, any executor, one digest -------------------------
    plan = ShardPlan(seed=2026, n_shards=4, n_instances=2000,
                     offered_load=24.0)
    print("Shard plan (seed 2026, 4 shards, 2000 instances, load 24/s):")
    for spec in plan.shards:
        print(f"  shard {spec.shard_id}: seed={spec.seed} "
              f"instances={spec.n_instances} "
              f"load={spec.offered_load:.1f}/s")

    digests = {}
    for workers in (0, 2):
        pool = ShardedPool(pool_size=16, workers=workers)
        result = pool.run(plan)
        row = scale_row(result)
        digests[result["executor"]] = merged_snapshot_digest(row)
        print(f"  {result['executor']:>12}: completed={row['completed']} "
              f"throughput={row['throughput']:.1f}/s "
              f"wall={result['wall_seconds']:.2f}s "
              f"digest={digests[result['executor']][:16]}…")
    assert len(set(digests.values())) == 1, "executors must agree"
    print("  merged rows are byte-identical across executors")

    # -- 2. a global admission budget below aggregate capacity ---------
    # Two pool-16 shards hold up to 16 instances in flight; a global
    # budget of 8 forces queueing and drops, split into per-shard leases.
    constrained = run_scale_point(n_instances=2000, n_shards=2,
                                  offered_load=24.0, pool_size=16,
                                  seed=2026, global_max_in_flight=8)
    admission = constrained["admission"]
    print(f"\nGlobal budget 8 over 2 shards (capacity 16): "
          f"leases={constrained['leases']}")
    print(f"  queued={admission['queued']} dropped={admission['dropped']} "
          f"completed={constrained['completed']}/2000")

    # -- 3. the sharded sweep: knees and lease rebalancing -------------
    pool = ShardedPool(pool_size=16)
    sweep = pool.sweep((4.0, 8.0, 16.0, 24.0), seed=2026,
                       n_instances=2000, n_shards=2,
                       global_max_in_flight=12)
    columns = ["offered_load", "throughput", "latency_p99", "dropped",
               "leases"]
    print("\n" + format_table(
        [{column: row[column] for column in columns}
         for row in sweep["rows"]],
        title="2-shard sweep under a global budget of 12"))
    print(f"lease history: {sweep['lease_history']}")
    merged_knee = sweep["merged_knee"]
    print(f"merged knee: {merged_knee['knee_offered_load']} "
          f"({merged_knee['verdict']}); per-shard: "
          + ", ".join(f"shard {index}: {knee['knee_offered_load']} "
                      f"({knee['verdict']})"
                      for index, knee in
                      enumerate(sweep["per_shard_knees"])))


if __name__ == "__main__":
    main()
