#!/usr/bin/env python3
"""Compare the paper's resolution algorithm with the two baselines.

Reproduces (a small version of) the Section 5.3 experiment: three threads
enter a CA action and raise three different exceptions nearly at the same
time, so exception resolution is always required.  The same application and
the same exception graph are executed under

* the paper's algorithm (single resolver, single ``Commit``),
* the Campbell–Randell 1986 algorithm (every thread resolves, gossip-style
  dissemination plus a confirmation round), and
* the authors' earlier 1996 algorithm (three all-to-all rounds).

The script prints total execution time, protocol-message counts and the
number of resolution-procedure invocations for a few values of the message
delay ``Tmmax`` and of the resolution cost ``Tres``, matching the shape of
Figures 12 and 13.

Run with::

    python examples/algorithm_comparison.py
"""

from repro.analysis import (
    messages_all_exceptions,
    romanovsky96_messages,
)
from repro.bench import run_experiment2
from repro.bench.reporting import format_table

ALGORITHMS = ("ours", "campbell-randell", "romanovsky96")


def sweep(parameter: str, values, fixed: float) -> list:
    rows = []
    for value in values:
        row = {parameter: value}
        for algorithm in ALGORITHMS:
            if parameter == "t_msg":
                result = run_experiment2(value, fixed, algorithm=algorithm)
            else:
                result = run_experiment2(fixed, value, algorithm=algorithm)
            short = {"ours": "ours", "campbell-randell": "cr",
                     "romanovsky96": "r96"}[algorithm]
            row[f"time_{short}"] = result.total_time
            row[f"msgs_{short}"] = result.protocol_messages
            row[f"rescalls_{short}"] = result.resolution_calls
        rows.append(row)
    return rows


def main() -> None:
    print("Three threads raise three different exceptions concurrently "
          "(N = 3).\n")

    tmmax_rows = sweep("t_msg", [1.0, 1.4, 1.8, 2.2], fixed=0.3)
    print(format_table(
        tmmax_rows,
        columns=["t_msg", "time_ours", "time_cr", "time_r96"],
        title="Total execution time vs Tmmax (Tres = 0.3)  [cf. Figure 13a]"))
    print()

    tres_rows = sweep("t_res", [0.3, 0.7, 1.1, 1.5], fixed=1.0)
    print(format_table(
        tres_rows,
        columns=["t_res", "time_ours", "time_cr", "time_r96"],
        title="Total execution time vs Tres (Tmmax = 1.0)  [cf. Figure 13b]"))
    print()

    print(format_table(
        tmmax_rows,
        columns=["t_msg", "msgs_ours", "msgs_cr", "msgs_r96",
                 "rescalls_ours", "rescalls_cr", "rescalls_r96"],
        title="Protocol messages and resolution-procedure invocations"))
    print()
    print(f"analytic reference for N=3: ours (N+1)(N-1) = "
          f"{messages_all_exceptions(3)} resolution messages, "
          f"Romanovsky-96 3N(N-1) = {romanovsky96_messages(3)}, "
          f"Campbell-Randell ~ N^3 = 27")


if __name__ == "__main__":
    main()
