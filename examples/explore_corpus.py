"""Coverage-guided corpus search over the fault-plan space.

Enumeration samples fault plans independently, so much of a large budget
re-visits behaviour already seen.  The corpus search
(``repro.explore.corpus``) steers the budget instead: the byte-level
canonical-trace digest of each run is its behaviour fingerprint, novel
digests admit the plan to a persisted corpus, and later generations
mutate corpus plans — deterministic neighbour sweeps first, then stacked
random mutations steered by the witnessing run's message statistics.

This example:

1. runs enumeration and corpus search at an equal storm-vocabulary
   budget and compares distinct-digest counts (the coverage claim);
2. persists the corpus and warm-restarts a second session from it;
3. shows a plan's deterministic neighbours and a stacked mutation.

Run with:  PYTHONPATH=src python examples/explore_corpus.py
"""

import json
import tempfile
from pathlib import Path

from repro.explore import Corpus, CorpusSearch, Explorer, PlanMutator
from repro.explore.generator import STORM_KINDS

SEED = 2026
BUDGET = 60


def main() -> None:
    # -- 1. enumeration vs corpus search at an equal budget ------------
    enumeration = Explorer(target="nested_abort", seed=SEED, budget=BUDGET,
                           kinds=STORM_KINDS).run()
    enumerated = len({case.digest for case in enumeration.cases})

    search = CorpusSearch(target="nested_abort", seed=SEED,
                          kinds=STORM_KINDS, generation_size=20,
                          chunk_size=20, shrink=False)
    report = search.run(budget=BUDGET)
    print(f"equal budget of {BUDGET} runs (storm vocabulary):")
    print(f"  enumeration: {enumerated} distinct trace digests")
    print(f"  corpus:      {report.distinct_digests} distinct trace digests "
          f"({report.generations} generations, corpus size "
          f"{report.corpus_size})")

    # -- 2. persistence and warm restart -------------------------------
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "corpus.json"
        search.corpus.save(path)
        resumed = CorpusSearch(target="nested_abort", seed=SEED,
                               corpus=Corpus.load(path), kinds=STORM_KINDS,
                               generation_size=20, chunk_size=20,
                               shrink=False)
        second = resumed.run(budget=20)
        print(f"\nwarm restart from {len(search.corpus)} persisted entries: "
              f"{second.executed} fresh runs, {second.novel} novel, corpus "
              f"now {len(resumed.corpus)}")

    # -- 3. mutation machinery -----------------------------------------
    seed_entry = search.corpus.entries[0]
    mutator = PlanMutator(SEED, search.target.threads, kinds=STORM_KINDS)
    neighbors = list(mutator.neighbors(seed_entry.plan,
                                       feedback=seed_entry.stats))
    print(f"\ncorpus seed plan: {seed_entry.plan.describe()}")
    print(f"  {len(neighbors)} deterministic neighbours, first: "
          f"{neighbors[0].describe()}")
    child = mutator.mutate(seed_entry.plan, "example-token",
                           feedback=seed_entry.stats)
    print(f"  one stacked mutation: {child.describe()}")
    print("\ncorpus entry as persisted JSON:")
    print(json.dumps(seed_entry.to_dict(), indent=2, sort_keys=True)[:400])


if __name__ == "__main__":
    main()
