"""Registering a custom scenario and traffic action through the plugin path.

Both plugin surfaces share one model (``repro.core.registry``): a registry
maps a unique name to a spec, the spec declares its parameters, and every
grid point or field override is validated *before* a kernel spins up.
This example walks the full path end to end:

1. registers a custom traffic action by spec and resolves it by name with
   validated overrides;
2. registers a custom scenario whose runner drives that action over a
   partition pool, with its declared params derived from the signature;
3. shows the structured errors a bad grid point produces — the unknown
   key, missing required param and wrong type each name the scenario and
   the offending key;
4. sweeps the scenario's grid and prints the rows.

Run with:  PYTHONPATH=src python examples/plugin_scenario.py
"""

from repro.bench import ScenarioRegistry, format_table, run_scenario
from repro.core.registry import ParamValidationError
from repro.workload import WorkloadDriver
from repro.workload.actions import TrafficActionSpec
from repro.workload.arrivals import OpenLoopPoisson
from repro.workload.registry import TrafficActionRegistry
from repro.workload.scenarios import _build_pool_system


# -- 1. a private action registry with a custom template ---------------
ACTIONS = TrafficActionRegistry()
ACTIONS.register(TrafficActionSpec("Probe", width=2, mean_service=0.8,
                                   raise_probability=0.2))


# -- 2. a custom scenario registered through the decorator --------------
registry = ScenarioRegistry()


@registry.register("probe_soak", grid=[{"offered_load": load}
                                       for load in (1.0, 2.0)])
def probe_soak(offered_load: float, n_instances: int = 40,
               pool_size: int = 6, seed: int = 2026):
    """Open-loop soak of the Probe action over a small pool."""
    system = _build_pool_system(pool_size, t_msg=0.02, t_resolution=0.05,
                                algorithm="ours")
    driver = WorkloadDriver(system, seed=seed)
    # Resolve by registered name, overriding a declared field — the
    # override is validated against the spec's fields first.
    driver.add_action(ACTIONS.resolve("Probe", raise_probability=0.1))
    report = driver.run(OpenLoopPoisson(rate=offered_load,
                                        count=n_instances))
    return {
        "offered_load": offered_load,
        "completed": report.completed,
        "recovered": report.outcome_counts.get("recovered", 0),
        "total_time": round(report.total_time, 3),
        "protocol_messages": system.network.stats.protocol_messages(),
    }


def main() -> None:
    scenario = registry.get("probe_soak")
    print(f"registered scenario {scenario.name!r}")
    print(f"  declared params: {scenario.describe_params()}")
    print(f"  action override check: "
          f"{ACTIONS.describe_params('Probe')}")

    # -- 3. validation fails fast, with actionable errors --------------
    for label, bad_point in [
            ("unknown key", {"offered_load": 1.0, "offered_loda": 2.0}),
            ("missing required", {"n_instances": 10}),
            ("wrong type", {"offered_load": "fast"})]:
        try:
            run_scenario("probe_soak", points=[bad_point],
                         registry=registry)
        except ParamValidationError as error:
            print(f"\n{label}:")
            for record in error.errors:
                print(f"  [{record.kind}] {record}")

    # -- 4. the sweep itself -------------------------------------------
    rows = run_scenario("probe_soak", registry=registry)
    print("\n" + format_table(rows, title="probe_soak sweep"))


if __name__ == "__main__":
    main()
