"""The same protocol code on two execution backends.

``repro.net.real`` runs a scenario either all-local on the deterministic
sim kernel (``run_sim``) or as one OS process per node over TCP sockets
with wall-clock pacing (``run_real``).  This example:

1. runs the paper's Experiment 1 application (``figure9``) on both
   backends and shows the oracle verdicts and (action, status) outcome
   counts agree;
2. runs the transactional scenario, whose external atomic object lives
   on a dedicated ``objhost`` process reached via RPC proxies;
3. kills a node mid-run to show degraded quiescence: the survivors are
   finalized, liveness oracles are waived, safety oracles still hold.

Run with:  PYTHONPATH=src python examples/real_backend.py
"""

from repro.net.real import run_real, run_sim


def show(label, result):
    verdict = "ok" if result.ok else "ORACLE VIOLATIONS"
    print(f"  {label:28s} {verdict:18s} outcomes={result.outcome_counts()}")
    for violation in result.violations:
        print(f"    {violation}")


def main() -> None:
    # -- 1. figure9 on both backends -----------------------------------
    print("figure9 (algorithm=ours, 1 iteration):")
    sim = run_sim("figure9", iterations=1)
    real = run_real("figure9", iterations=1, time_scale=0.01)
    show("sim", sim)
    show("real (3 processes)", real)
    print("  parity:", "outcomes match" if real.outcomes == sim.outcomes
          else "OUTCOMES DIVERGE")

    # -- 2. remote atomic objects --------------------------------------
    # Two worker processes run the CA action; the account object lives on
    # the objhost process, reached through RemoteTransaction RPC proxies.
    print("\ntransactional (2 workers + 1 object host):")
    real = run_real("transactional", iterations=2, time_scale=0.01)
    show("real (3 processes)", real)
    counter = real.records["objhost"]["counters"][0]
    print(f"  host counter: {counter['initial']} -> {counter['final']} "
          f"({counter['committed_writers']} committed writers)")

    # -- 3. crash injection --------------------------------------------
    print("\nfigure9 with T3 killed at 0.4s wall time:")
    real = run_real("figure9", iterations=3, time_scale=0.05,
                    stall=1.0, kill=("T3", 0.4))
    show("real, degraded", real)
    print(f"  crashed={real.crashed}  surviving records from "
          f"{sorted(real.records)}")


if __name__ == "__main__":
    main()
