"""Tracing a workload run with ``repro.obs``: spans, metrics, Perfetto.

This example:

1. runs one capacity point inside an ambient ``obs.capture()`` and shows
   that the traced row is identical to the untraced one (observation
   never perturbs scheduling — the conformance suite pins this);
2. assembles causal spans from the captured events and reconciles their
   outcome counts with the run's own telemetry;
3. exports a Perfetto-loadable Chrome trace, a metrics snapshot and a
   Prometheus exposition, and prints a flight-recorder dump's shape.

Run with:  PYTHONPATH=src python examples/tracing_demo.py
"""

import json
import os
import tempfile

from repro import obs
from repro.bench.engine import ScenarioConfig, run_scenario

POINT = {"offered_load": 2.0, "n_instances": 40, "seed": 7}


def main() -> None:
    # -- 1. the same point, untraced and traced ------------------------
    plain = run_scenario("capacity", points=[POINT])
    with obs.capture(obs.ObsConfig()) as cap:
        traced = run_scenario("capacity", points=[POINT])
    assert plain == traced, "observation must never change a row"
    print(f"Traced row identical to untraced row: "
          f"completed={traced[0]['completed']} "
          f"throughput={traced[0]['throughput']:.2f}/s")
    print(f"Captured {len(cap.events())} events from the run")

    # -- 2. spans and their reconciliation -----------------------------
    spans = cap.spans()
    outcomes = obs.span_outcomes(spans)
    print(f"\n{len(spans)} spans; outcomes by status: {outcomes}")
    longest = max(spans, key=lambda span: span.duration or 0.0)
    print(f"Longest span: {longest.action}#{longest.instance} on "
          f"{longest.thread}: {longest.duration:.2f}s "
          f"-> {longest.status} ({len(longest.markers)} markers)")

    # -- 3. exports ----------------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        # The engine writes all four artefacts in one traced sweep.
        run_scenario("capacity", points=[POINT],
                     config=ScenarioConfig(obs=obs.ObsConfig(),
                                           export_dir=directory))
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            print(f"  wrote {name} ({os.path.getsize(path)} bytes)")
        with open(os.path.join(directory, "capacity.trace.json"),
                  encoding="utf-8") as handle:
            document = json.load(handle)
        problems = obs.validate_chrome(document)
        assert not problems, problems
        print(f"Chrome trace: {len(document['traceEvents'])} events, "
              f"schema-valid; load the .trace.json in "
              f"https://ui.perfetto.dev")

    snapshot = cap.metrics_snapshot()
    print(f"\nMetrics: {len(snapshot['counters'])} counter series, "
          f"{len(snapshot['timeline']['series'])} timeline series")
    exposition = cap.prometheus_text()
    print("Prometheus exposition (first 5 lines):")
    for line in exposition.splitlines()[:5]:
        print(f"  {line}")

    dumps = cap.flight_dumps()
    print(f"\nFlight recorder: {len(dumps)} dump(s); last window holds "
          f"{len(dumps[0]['events'])} of {dumps[0]['observed']} "
          f"observed events (truncated={dumps[0]['truncated']})")


if __name__ == "__main__":
    main()
