"""Tests for the declarative scenario engine (registry + parallel runs)."""

import pytest

from repro.analysis import messages_single_exception
from repro.bench import (
    REGISTRY,
    Scenario,
    ScenarioRegistry,
    run_scenario,
    sweep_figure12_tres,
    sweep_figure12_tmmax,
    sweep_figure9,
)
from repro.bench.engine import figure9_point, figure9_grid
from repro.bench.scenarios import run_experiment1, run_experiment2


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_default_registry_contains_figures_and_new_workloads(self):
        for name in ("figure9", "figure12_tmmax", "figure12_tres",
                     "large_n", "churn", "wide_graph", "graph_microbench"):
            assert name in REGISTRY

    def test_every_registered_scenario_has_a_grid_and_description(self):
        for scenario in REGISTRY:
            assert scenario.grid, scenario.name
            assert scenario.description, scenario.name

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.add(Scenario("demo", lambda: {}, ()))
        with pytest.raises(ValueError):
            registry.add(Scenario("demo", lambda: {}, ()))

    def test_unknown_scenario_reports_known_names(self):
        registry = ScenarioRegistry()
        registry.add(Scenario("known", lambda: {}, ()))
        with pytest.raises(KeyError, match="known"):
            registry.get("missing")

    def test_register_decorator_keeps_runner_usable(self):
        registry = ScenarioRegistry()

        @registry.register("twice", grid=[{"n": 1}, {"n": 2}])
        def twice(n):
            """Doubles n."""
            return {"n": n, "result": 2 * n}

        assert twice(3) == {"n": 3, "result": 6}
        assert registry.get("twice").description == "Doubles n."
        assert run_scenario("twice", registry=registry) == [
            {"n": 1, "result": 2}, {"n": 2, "result": 4}]


# ----------------------------------------------------------------------
# Declared-parameter validation
# ----------------------------------------------------------------------
class TestGridValidation:
    def make_registry(self):
        registry = ScenarioRegistry()

        @registry.register("demo", grid=[{"n": 1}])
        def demo(n: int, rate: float = 1.0):
            return {"n": n, "rate": rate}

        return registry

    def test_params_derived_from_signature(self):
        scenario = self.make_registry().get("demo")
        assert [p.name for p in scenario.params] == ["n", "rate"]
        assert not scenario.accepts_extra
        assert "n: int (required)" in scenario.describe_params()

    def test_registration_rejects_invalid_default_grid(self):
        from repro.core.registry import ParamValidationError
        registry = ScenarioRegistry()
        with pytest.raises(ParamValidationError,
                           match="unknown parameter 'm'"):
            @registry.register("bad", grid=[{"m": 1}])
            def bad(n: int):
                return {"n": n}

    def test_run_rejects_unknown_key_before_running(self):
        from repro.core.registry import ParamValidationError
        registry = self.make_registry()
        with pytest.raises(ParamValidationError) as excinfo:
            run_scenario("demo", points=[{"n": 1, "m": 2}],
                         registry=registry)
        (error,) = excinfo.value.errors
        assert error.kind == "unknown" and error.key == "m"
        assert "scenario 'demo'" in str(error)

    def test_run_rejects_missing_required_param(self):
        from repro.core.registry import ParamValidationError
        registry = self.make_registry()
        with pytest.raises(ParamValidationError,
                           match="missing required parameter 'n'"):
            run_scenario("demo", points=[{"rate": 2.0}], registry=registry)

    def test_run_rejects_wrong_type(self):
        from repro.core.registry import ParamValidationError
        registry = self.make_registry()
        with pytest.raises(ParamValidationError,
                           match="parameter 'n' expects int"):
            run_scenario("demo", points=[{"n": "one"}], registry=registry)

    def test_all_errors_reported_at_once(self):
        from repro.core.registry import ParamValidationError
        registry = self.make_registry()
        with pytest.raises(ParamValidationError) as excinfo:
            run_scenario("demo", points=[{"m": 2}, {"n": "one"}],
                         registry=registry)
        kinds = sorted(error.kind for error in excinfo.value.errors)
        assert kinds == ["missing", "type", "unknown"]

    def test_every_default_grid_validates(self):
        for scenario in REGISTRY:
            assert scenario.validate_grid(scenario.grid) == [], scenario.name


# ----------------------------------------------------------------------
# Byte-identical reproduction of the old hand-rolled sweeps
# ----------------------------------------------------------------------
class TestLegacyEquivalence:
    def test_figure9_rows_match_hand_rolled_loop(self):
        values = [0.2, 0.6]
        rows = sweep_figure9("t_msg", values=values, iterations=2)
        expected = []
        for value in values:
            result = run_experiment1(t_msg=value, t_abort=0.1,
                                     t_resolution=0.3, iterations=2)
            expected.append({
                "t_msg": value,
                "total_time": result.total_time,
                "time_per_iteration": result.time_per_iteration,
                "protocol_messages": result.protocol_messages,
            })
        assert rows == expected

    def test_figure12_rows_match_hand_rolled_loop(self):
        rows = sweep_figure12_tres(values=[0.3, 0.7])
        expected = []
        for t_res in [0.3, 0.7]:
            ours = run_experiment2(1.0, t_res, algorithm="ours")
            cr = run_experiment2(1.0, t_res, algorithm="campbell-randell")
            expected.append({
                "t_res": t_res,
                "time_ours": ours.total_time,
                "time_cr": cr.total_time,
                "messages_ours": ours.protocol_messages,
                "messages_cr": cr.protocol_messages,
                "resolution_calls_ours": ours.resolution_calls,
                "resolution_calls_cr": cr.resolution_calls,
            })
        assert rows == expected

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            sweep_figure9("t_nonsense")

    def test_figure9_grid_covers_all_defaults(self):
        assert len(figure9_grid("t_msg")) == 14
        assert len(figure9_grid("t_abort")) == 11
        assert len(figure9_grid("t_resolution")) == 11


# ----------------------------------------------------------------------
# Parallel execution: identical rows, preserved order
# ----------------------------------------------------------------------
class TestParallelExecution:
    def test_figure9_parallel_equals_sequential(self):
        points = figure9_grid("t_msg", values=[0.2, 0.4, 0.6], iterations=1)
        sequential = run_scenario("figure9", points=points)
        parallel = run_scenario("figure9", points=points, parallel=True,
                                max_workers=2)
        assert parallel == sequential

    def test_figure12_parallel_equals_sequential(self):
        sequential = sweep_figure12_tmmax(values=[1.0, 1.4])
        parallel = sweep_figure12_tmmax(values=[1.0, 1.4], parallel=True)
        assert parallel == sequential

    def test_large_n_parallel_equals_sequential(self):
        points = [{"n_threads": n} for n in (3, 5, 8)]
        sequential = run_scenario("large_n", points=points)
        parallel = run_scenario("large_n", points=points, parallel=True)
        assert parallel == sequential

    def test_churn_parallel_equals_sequential(self):
        points = [{"n_groups": n, "iterations": 1} for n in (1, 3)]
        sequential = run_scenario("churn", points=points)
        parallel = run_scenario("churn", points=points, parallel=True)
        assert parallel == sequential

    def test_unpicklable_runner_falls_back_to_sequential(self):
        registry = ScenarioRegistry()
        offset = 10

        @registry.register("closure", grid=[{"n": 1}, {"n": 2}])
        def closure_runner(n):
            return {"n": n + offset}

        rows = run_scenario("closure", registry=registry, parallel=True)
        assert rows == [{"n": 11}, {"n": 12}]

    def test_single_point_grids_run_in_process(self):
        rows = run_scenario("large_n", points=[{"n_threads": 3}],
                            parallel=True)
        assert rows[0]["n_threads"] == 3

    def test_empty_grid_returns_no_rows(self):
        assert run_scenario("large_n", points=[]) == []


# ----------------------------------------------------------------------
# The new workloads
# ----------------------------------------------------------------------
class TestLargeN:
    def test_measured_messages_match_formula_beyond_the_paper(self):
        rows = run_scenario("large_n", points=[{"n_threads": n}
                                               for n in (8, 12)])
        for row in rows:
            assert row["resolution_messages"] == \
                messages_single_exception(row["n_threads"])
            assert row["resolution_calls"] == 1
            assert row["total_time"] > 0

    def test_default_grid_reaches_64_participants(self):
        scenario = REGISTRY.get("large_n")
        assert max(point["n_threads"] for point in scenario.grid) == 64


class TestChurn:
    def test_all_participations_recover(self):
        row = run_scenario("churn", points=[{"n_groups": 3,
                                             "iterations": 2}])[0]
        assert row["participations_recovered"] == 3 * 3 * 2
        assert row["resolutions"] == 3 * 2

    def test_message_load_scales_linearly_with_groups(self):
        rows = run_scenario("churn", points=[{"n_groups": 1, "iterations": 1},
                                             {"n_groups": 4,
                                              "iterations": 1}])
        assert rows[1]["protocol_messages"] == 4 * rows[0]["protocol_messages"]

    def test_concurrent_groups_share_virtual_time(self):
        # Groups run concurrently: 4 groups take (almost) the same virtual
        # time as 1 group, not 4x.
        rows = run_scenario("churn", points=[{"n_groups": 1, "iterations": 1},
                                             {"n_groups": 4,
                                              "iterations": 1}])
        assert rows[1]["total_time"] < 2 * rows[0]["total_time"]

    def test_group_validation(self):
        from repro.bench.scenarios import run_churn
        with pytest.raises(ValueError):
            run_churn(0)
        with pytest.raises(ValueError):
            run_churn(1, group_size=1)
        with pytest.raises(ValueError):
            run_churn(1, iterations=0)

    def test_actions_completed_is_measured_not_assumed(self):
        row = run_scenario("churn", points=[{"n_groups": 2,
                                             "iterations": 1}])[0]
        assert row["actions_attempted"] == 2
        assert row["actions_completed"] == 2
        assert row["participations_recovered"] == 2 * 3


class TestTableFacades:
    def test_churn_table_applies_iterations_to_the_default_grid(self):
        from repro.bench import churn_table
        rows = churn_table(iterations=1)
        assert [row["actions_attempted"] for row in rows] == [1, 2, 4, 8, 16]

    def test_large_n_table_applies_algorithm_to_the_default_grid(self):
        from repro.bench import large_n_table
        ours = large_n_table(thread_counts=[4], algorithm="ours")[0]
        cr = large_n_table(thread_counts=[4],
                           algorithm="campbell-randell")[0]
        assert ours["resolution_messages"] != cr["resolution_messages"]


class TestWideGraph:
    def test_storm_recovers_every_participation(self):
        from repro.bench import wide_graph_table
        row = wide_graph_table(thread_counts=[4], iterations=1)[0]
        assert row["recovered"] == 4
        assert row["resolution_calls"] == 1
        assert row["graph_nodes"] > 700   # the wide truncated graph

    def test_rows_embed_json_serializable_snapshots(self):
        import json

        from repro.bench import wide_graph_table
        row = wide_graph_table(thread_counts=[4], iterations=1)[0]
        encoded = json.dumps(row)
        assert "->" in encoded            # the string-encoded link keys

    def test_graph_microbench_reports_compiled_timings(self):
        from repro.bench import graph_microbench_table
        row = graph_microbench_table(points=[{"n_primitives": 8,
                                              "max_level": 2,
                                              "naive_calls": 1}])[0]
        assert row["nodes"] == 1 + 8 + 28 + 56
        assert row["resolve_seconds"] < 1.0
        assert row["speedup_vs_naive"] > 1


class TestResolutionBaseline:
    def test_writer_produces_loadable_json(self, tmp_path):
        import json

        from repro.bench import write_resolution_baseline
        path = tmp_path / "BENCH_resolution.json"
        document = write_resolution_baseline(
            str(path),
            wide_points=[{"n_threads": 4, "iterations": 1}],
            micro_points=[{"n_primitives": 6, "max_level": 2,
                           "resolve_calls": 10, "naive_calls": 0}])
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))
        assert len(loaded["wide_graph"]) == 1
        assert len(loaded["graph_microbench"]) == 1
