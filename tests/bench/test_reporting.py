"""Direct unit tests for the plain-text reporting helpers (bench/reporting.py)."""

from __future__ import annotations

import pytest

from repro.bench.reporting import (
    format_table,
    linear_fit,
    paper_reference_figure9,
    paper_reference_figure12,
    series,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            [{"n": 1, "time": 1.23456}, {"n": 10, "time": 12.3}],
            title="demo")
        lines = text.split("\n")
        assert lines[0] == "demo"
        assert lines[1].split() == ["n", "time"]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].split() == ["1", "1.235"]   # default precision 3
        assert lines[4].split() == ["10", "12.300"]
        # All body lines are padded to the same width.
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_empty_rows(self):
        assert format_table([], title="nothing") == "nothing\n(no rows)"

    def test_explicit_columns_and_missing_values(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "missing"])
        header, _separator, body = text.split("\n")
        assert header.split() == ["b", "missing"]
        assert body.split() == ["2"]  # missing value renders empty

    def test_precision(self):
        text = format_table([{"x": 1.98765}], precision=1)
        assert text.split("\n")[-1].strip() == "2.0"


class TestPaperReferences:
    def test_figure9_reference_shapes(self):
        reference = paper_reference_figure9()
        assert sorted(reference) == ["varying_tabo", "varying_tmmax",
                                     "varying_treso"]
        assert len(reference["varying_tmmax"]) == 14
        assert len(reference["varying_tabo"]) == 11
        assert len(reference["varying_treso"]) == 11
        first = reference["varying_tmmax"][0]
        assert first["t_msg"] == 0.2
        assert first["paper_total_time"] == pytest.approx(94.361391)

    def test_figure12_reference_shapes(self):
        reference = paper_reference_figure12()
        assert len(reference["varying_tmmax"]) == 8
        assert len(reference["varying_tres"]) == 7
        for row in reference["varying_tmmax"]:
            # The paper's new algorithm beats Campbell-Randell everywhere.
            assert row["paper_time_ours"] < row["paper_time_cr"]


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert fit["slope"] == pytest.approx(2.0)
        assert fit["intercept"] == pytest.approx(1.0)
        assert fit["r_squared"] == pytest.approx(1.0)

    def test_constant_ys_have_unit_r_squared(self):
        fit = linear_fit([0.0, 1.0, 2.0], [4.0, 4.0, 4.0])
        assert fit["slope"] == pytest.approx(0.0)
        assert fit["r_squared"] == 1.0

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            linear_fit([3.0, 3.0], [1.0, 2.0])  # identical x values


class TestSeries:
    def test_extracts_float_pairs(self):
        xs, ys = series([{"x": 1, "y": 2}, {"x": 3, "y": 4}], "x", "y")
        assert xs == [1.0, 3.0]
        assert ys == [2.0, 4.0]


class TestTimelineReporting:
    """The text helpers consume obs metrics timelines directly."""

    def make_rows(self):
        from repro.obs.metrics import Timeline
        timeline = Timeline(1.0)
        clock = {"now": 0.0}
        # A linear ramp: value == 2t + 1 at every grid point.
        timeline.track("in_flight", lambda: 2.0 * clock["now"] + 1.0)
        for now in (0.0, 1.0, 2.0, 3.0):
            clock["now"] = now
            timeline.maybe_sample(now)
        return [{"t": t, "in_flight": value}
                for t, value in timeline.series["in_flight"]]

    def test_timeline_series_render_as_a_table(self):
        text = format_table(self.make_rows(), title="in-flight timeline",
                            precision=1)
        lines = text.split("\n")
        assert lines[0] == "in-flight timeline"
        assert lines[1].split() == ["t", "in_flight"]
        assert lines[3].split() == ["0.0", "1.0"]
        assert lines[-1].split() == ["3.0", "7.0"]

    def test_timeline_points_feed_series_and_linear_fit(self):
        xs, ys = series(self.make_rows(), "t", "in_flight")
        fit = linear_fit(xs, ys)
        assert fit["slope"] == pytest.approx(2.0)
        assert fit["intercept"] == pytest.approx(1.0)
        assert fit["r_squared"] == pytest.approx(1.0)
