"""Tests for the traffic-action registry and named-action resolution."""

import pytest

from repro.core.registry import ParamValidationError
from repro.workload.actions import ActionMix, TrafficActionSpec
from repro.workload.registry import (
    ACTIONS,
    STOCK_ACTIONS,
    TrafficActionRegistry,
)
from repro.workload.transactional import TRANSFER  # registers "Transfer"


class TestStockRegistry:
    def test_stock_actions_registered(self):
        assert ACTIONS.names() == sorted(
            ["Serve", "Ping", "Crunch", "Flaky", "Transfer"])
        for spec in STOCK_ACTIONS:
            assert ACTIONS.get(spec.name) is spec
        assert ACTIONS.get("Transfer") is TRANSFER

    def test_resolve_without_overrides_returns_template(self):
        assert ACTIONS.resolve("Serve") is ACTIONS.get("Serve")

    def test_resolve_with_overrides_replaces_fields(self):
        spec = ACTIONS.resolve("Serve", width=5, raise_probability=0.25)
        assert spec.width == 5
        assert spec.raise_probability == 0.25
        assert spec.name == "Serve"
        # The template itself is untouched.
        assert ACTIONS.get("Serve").width == 2

    def test_unknown_action_lists_registered(self):
        with pytest.raises(KeyError) as excinfo:
            ACTIONS.resolve("Nope")
        assert "unknown traffic action 'Nope'" in str(excinfo.value)
        assert "'Serve'" in str(excinfo.value)

    def test_unknown_override_key_names_action_and_key(self):
        with pytest.raises(ParamValidationError) as excinfo:
            ACTIONS.resolve("Serve", widht=3)
        (error,) = excinfo.value.errors
        assert error.kind == "unknown"
        assert error.key == "widht"
        assert "traffic action 'Serve'" in str(error)

    def test_wrong_override_type_named(self):
        with pytest.raises(ParamValidationError) as excinfo:
            ACTIONS.resolve("Serve", width="wide")
        (error,) = excinfo.value.errors
        assert error.kind == "type"
        assert error.key == "width"
        assert "expects int" in str(error)

    def test_name_is_not_overridable(self):
        with pytest.raises(ParamValidationError) as excinfo:
            ACTIONS.resolve("Serve", name="Other")
        (error,) = excinfo.value.errors
        assert error.kind == "unknown"
        assert error.key == "name"

    def test_describe_params_lists_fields(self):
        description = ACTIONS.describe_params("Serve")
        assert "width: int = 2" in description
        assert "name" not in description

    def test_subclass_template_declares_extra_fields(self):
        description = ACTIONS.describe_params("Transfer")
        assert "n_accounts" in description
        assert "abort_probability" in description
        resolved = ACTIONS.resolve("Transfer", n_accounts=4)
        assert resolved.n_accounts == 4


class TestFreshRegistry:
    def test_duplicate_registration_rejected(self):
        registry = TrafficActionRegistry()
        registry.register(TrafficActionSpec("A"))
        with pytest.raises(ValueError,
                           match="traffic action 'A' already registered"):
            registry.register(TrafficActionSpec("A"))

    def test_invalid_override_value_rejected_by_spec(self):
        # Validation passes (width is an int) but the spec's own
        # __post_init__ still enforces its value constraints.
        with pytest.raises(ValueError, match="width must be at least 1"):
            ACTIONS.resolve("Serve", width=0)


class TestActionMixByName:
    def test_add_by_name_resolves_through_registry(self):
        mix = ActionMix()
        spec = mix.add("Ping", weight=5.0)
        assert spec.name == "Ping"
        assert spec.weight == 5.0
        assert mix.get("Ping") is spec

    def test_add_spec_with_overrides_rejected(self):
        mix = ActionMix()
        with pytest.raises(TypeError, match="registered action name"):
            mix.add(TrafficActionSpec("X"), width=3)

    def test_add_by_name_propagates_validation_errors(self):
        mix = ActionMix()
        with pytest.raises(ParamValidationError):
            mix.add("Ping", bogus=1)
