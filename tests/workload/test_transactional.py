"""Tests for the transactional CA workload and its oracles."""

import pytest

from repro.core.registry import ParamValidationError
from repro.workload.transactional import (
    TransactionalActionSpec,
    account_name,
    run_transactional_point,
)


def small_point(**overrides):
    """A fast, contended default point (seconds, not minutes)."""
    params = dict(offered_load=4.0, n_instances=40, pool_size=8,
                  width=2, n_accounts=4, seed=2026)
    params.update(overrides)
    return run_transactional_point(**params)


class TestSpec:
    def test_accounts_must_cover_width(self):
        with pytest.raises(ValueError, match="n_accounts"):
            TransactionalActionSpec("T", width=4, n_accounts=2)

    def test_abort_probability_bounds(self):
        with pytest.raises(ValueError, match="abort_probability"):
            TransactionalActionSpec("T", abort_probability=1.5)

    def test_profile_draws_distinct_accounts(self):
        from repro.simkernel.rng import SeededStreams
        spec = TransactionalActionSpec("T", width=3, n_accounts=5)
        for index in range(20):
            profile = spec.draw_profile(SeededStreams(7), index)
            assert len(set(profile.accounts)) == 3
            assert all(0 <= a < 5 for a in profile.accounts)

    def test_account_name_is_stable(self):
        assert account_name(3) == "acct003"


class TestTransactionalPoint:
    def test_oracle_clean_and_increments_match(self):
        row = small_point()
        assert row["violations"] == []
        # The no-lost-update contract, restated over the row.
        assert row["account_total"] == row["committed_increments"]
        assert row["active_transactions"] == 0
        assert row["completed"] == 40

    def test_contention_produces_deadlock_recoveries(self):
        # Heavy contention on few accounts: wait-for cycles must form,
        # be refused and recover — without a single oracle violation.
        row = small_point(offered_load=8.0, n_instances=80,
                          raise_probability=0.2)
        assert row["deadlock_recoveries"] > 0
        assert row["violations"] == []
        assert row["account_total"] == row["committed_increments"]

    def test_aborts_roll_back(self):
        # Every raising instance aborts: none of its increments may
        # survive, so the totals still match committed writers only.
        row = small_point(raise_probability=1.0, abort_probability=1.0)
        assert row["transactions"].get("aborted", 0) > 0
        assert row["violations"] == []
        assert row["account_total"] == row["committed_increments"]

    def test_clean_run_commits_everything(self):
        row = small_point(raise_probability=0.0, offered_load=1.0,
                          n_instances=20)
        statuses = row["transactions"]
        committed = statuses.get("committed", 0)
        # Deadlock victims abort even in a no-fault run; everyone else
        # commits two increments (width=2).
        assert committed + statuses.get("aborted", 0) == 20
        assert row["account_total"] == 2 * committed
        assert row["violations"] == []

    def test_rows_are_deterministic(self):
        assert small_point() == small_point()

    def test_baseline_algorithms_run_clean(self):
        for algorithm in ("campbell-randell", "romanovsky96"):
            row = small_point(n_instances=20, algorithm=algorithm)
            assert row["violations"] == []
            assert row["account_total"] == row["committed_increments"]


class TestScenarioRegistration:
    def test_registered_through_the_plugin_path(self):
        from repro.bench.engine import REGISTRY
        scenario = REGISTRY.get("transactional")
        assert scenario.accepts_extra
        assert [p.name for p in scenario.params] == ["offered_load"]
        assert scenario.validate_grid(scenario.grid) == []

    def test_invalid_point_rejected_before_running(self):
        from repro.bench.engine import run_scenario
        with pytest.raises(ParamValidationError) as excinfo:
            run_scenario("transactional", points=[{}])
        assert "missing required parameter 'offered_load'" \
            in str(excinfo.value)
