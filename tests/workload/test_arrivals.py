"""Tests for the arrival processes (seeded schedules, replay, closed loop)."""

import pytest

from repro.net.latency import ConstantLatency
from repro.runtime.config import RuntimeConfig
from repro.runtime.system import DistributedCASystem
from repro.workload import (
    AdmissionController,
    ClosedLoopClients,
    OpenLoopPoisson,
    TraceReplay,
    TrafficActionSpec,
    WorkloadDriver,
)


def build_driver(pool_size=4, seed=7, latency=0.01, **admission):
    system = DistributedCASystem(RuntimeConfig(),
                                 latency=ConstantLatency(latency))
    system.add_threads([f"W{i:02d}" for i in range(1, pool_size + 1)])
    driver = WorkloadDriver(system, seed=seed,
                            admission=AdmissionController(**admission))
    driver.add_action(TrafficActionSpec("Serve", width=2, mean_service=0.5))
    return driver


class TestValidation:
    @pytest.mark.parametrize("factory", [
        lambda: OpenLoopPoisson(rate=0.0, count=1),
        lambda: OpenLoopPoisson(rate=1.0, count=0),
        lambda: TraceReplay([]),
        lambda: TraceReplay([-1.0]),
        lambda: ClosedLoopClients(0, 1.0, 1),
        lambda: ClosedLoopClients(1, -1.0, 1),
        lambda: ClosedLoopClients(1, 1.0, 0),
    ])
    def test_rejects_bad_parameters(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestOpenLoopPoisson:
    def test_submits_exactly_count_jobs(self):
        driver = build_driver()
        report = driver.run(OpenLoopPoisson(rate=4.0, count=25))
        assert report.jobs == 25
        assert report.completed + report.dropped == 25

    def test_same_seed_same_arrival_times(self):
        first = build_driver(seed=11)
        second = build_driver(seed=11)
        first.run(OpenLoopPoisson(rate=4.0, count=20))
        second.run(OpenLoopPoisson(rate=4.0, count=20))
        assert [job.arrived_at for job in first.jobs] == \
            [job.arrived_at for job in second.jobs]

    def test_different_seed_different_schedule(self):
        first = build_driver(seed=11)
        second = build_driver(seed=12)
        first.run(OpenLoopPoisson(rate=4.0, count=20))
        second.run(OpenLoopPoisson(rate=4.0, count=20))
        assert [job.arrived_at for job in first.jobs] != \
            [job.arrived_at for job in second.jobs]

    def test_describe(self):
        assert OpenLoopPoisson(2.0, 10).describe() == \
            "poisson(rate=2, count=10)"


class TestTraceReplay:
    def test_arrivals_at_exact_times(self):
        driver = build_driver()
        report = driver.run(TraceReplay([0.5, 0.25, 2.0]))
        assert report.jobs == 3
        assert [job.arrived_at for job in driver.jobs] == [0.25, 0.5, 2.0]

    def test_entries_may_pin_actions(self):
        driver = build_driver()
        driver.add_action(TrafficActionSpec("Other", width=2,
                                            mean_service=0.25))
        driver.run(TraceReplay([(0.1, "Other"), (0.2, "Serve")]))
        assert [job.action for job in driver.jobs] == ["Other", "Serve"]


class TestClosedLoopClients:
    def test_each_client_submits_its_quota(self):
        driver = build_driver(pool_size=6)
        report = driver.run(ClosedLoopClients(n_clients=3, think_time=0.2,
                                              jobs_per_client=4))
        assert report.jobs == 12
        assert report.completed == 12

    def test_closed_loop_never_exceeds_client_concurrency(self):
        driver = build_driver(pool_size=8)
        report = driver.run(ClosedLoopClients(n_clients=2, think_time=0.0,
                                              jobs_per_client=5))
        # Two clients, each with at most one job outstanding.
        assert report.max_concurrency <= 2
        assert report.jobs == 10
