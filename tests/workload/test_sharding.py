"""Sharded partition pools: plans, leases, merging, determinism."""

import json
import logging

import pytest

from repro.bench.engine import REGISTRY, run_scenario
from repro.conformance import VOLATILE_KEYS
from repro.workload.sharding import (
    GlobalAdmissionController,
    ShardPlan,
    ShardedPool,
    merged_snapshot_digest,
    run_scale_point,
    shard_seed,
)

#: A cheap two-shard point reused across the determinism tests.
SMALL = dict(n_instances=240, n_shards=2, offered_load=6.0, pool_size=8,
             seed=2026)


class TestShardPlan:
    def test_split_covers_every_instance_and_load(self):
        plan = ShardPlan(seed=7, n_shards=3, n_instances=10,
                         offered_load=6.0)
        sizes = [spec.n_instances for spec in plan.shards]
        assert sizes == [4, 3, 3]          # earlier shards take the remainder
        assert sum(sizes) == 10
        loads = [spec.offered_load for spec in plan.shards]
        assert sum(loads) == pytest.approx(6.0)
        # Per-shard load is proportional to the shard's instance share.
        assert loads[0] == pytest.approx(6.0 * 4 / 10)

    def test_shard_seeds_are_stable_and_distinct(self):
        two = ShardPlan(seed=7, n_shards=2, n_instances=100, offered_load=4.0)
        three = ShardPlan(seed=7, n_shards=3, n_instances=100,
                          offered_load=4.0)
        seeds = [spec.seed for spec in three.shards]
        assert len(set(seeds)) == 3
        assert seeds == [shard_seed(7, index) for index in range(3)]
        # A shard's seed depends on (seed, shard_id) only — re-sharding
        # does not reseed the shards that keep their id.
        assert two.shards[0].seed == three.shards[0].seed
        assert two.shards[1].seed == three.shards[1].seed

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(seed=1, n_shards=0, n_instances=10, offered_load=1.0)
        with pytest.raises(ValueError):
            ShardPlan(seed=1, n_shards=1, n_instances=0, offered_load=1.0)
        with pytest.raises(ValueError):
            ShardPlan(seed=1, n_shards=1, n_instances=10, offered_load=0.0)
        with pytest.raises(ValueError):
            ShardPlan(seed=1, n_shards=2, n_instances=10, offered_load=1.0,
                      leases=[4])           # one lease per shard required

    def test_describe_is_json_serializable(self):
        plan = ShardPlan(seed=7, n_shards=2, n_instances=10,
                         offered_load=4.0, leases=[3, 3])
        described = json.loads(json.dumps(plan.describe()))
        assert described["n_shards"] == 2
        assert described["leases"] == [3, 3]


class TestGlobalAdmissionController:
    def test_unlimited_budget_gives_unlimited_leases(self):
        controller = GlobalAdmissionController(None, 3)
        assert controller.leases == (None, None, None)
        controller.rebalance([5, 1, 1])
        assert controller.leases == (None, None, None)

    def test_budget_split_sums_and_floors(self):
        controller = GlobalAdmissionController(10, 3)
        assert sum(controller.leases) == 10
        assert all(lease >= 1 for lease in controller.leases)

    def test_budget_below_shard_count_is_rejected(self):
        with pytest.raises(ValueError):
            GlobalAdmissionController(2, 3)

    def test_rebalance_follows_demand(self):
        controller = GlobalAdmissionController(12, 3)
        controller.rebalance([10, 1, 1])
        first = controller.leases
        assert sum(first) == 12
        assert all(lease >= 1 for lease in first)
        assert first[0] > first[1] and first[0] > first[2]
        # Pure arithmetic: the same demand vector gives the same split.
        controller.rebalance([10, 1, 1])
        assert controller.leases == first


class TestShardedPoolDeterminism:
    def test_worker_count_does_not_change_the_merged_row(self):
        digests = {workers: merged_snapshot_digest(
            run_scale_point(workers=workers, **SMALL))
            for workers in (0, 2, 4)}
        assert len(set(digests.values())) == 1

    def test_merged_equals_sum_of_shards(self):
        row = run_scale_point(**SMALL)
        for field in ("jobs", "completed", "dropped"):
            assert row[field] == sum(shard[field]
                                     for shard in row["per_shard"])
        assert row["admission"]["arrived"] == row["jobs"]
        assert row["oracle"] == "ok"
        assert row["n_violations"] == 0

    def test_rows_are_json_serializable(self):
        json.dumps(run_scale_point(**SMALL), allow_nan=False)

    def test_digest_strips_only_volatile_fields(self):
        row = run_scale_point(**SMALL)
        assert VOLATILE_KEYS <= set(row)
        tampered = dict(row, wall_seconds=123.0, workers=99,
                        executor="other")
        assert merged_snapshot_digest(tampered) == \
            merged_snapshot_digest(row)
        assert merged_snapshot_digest(dict(row, completed=0)) != \
            merged_snapshot_digest(row)


class TestGlobalBackpressure:
    def test_budget_below_capacity_queues_and_drops(self):
        constrained = run_scale_point(
            n_instances=400, n_shards=2, offered_load=12.0, pool_size=8,
            seed=2026, global_max_in_flight=4)
        unconstrained = run_scale_point(
            n_instances=400, n_shards=2, offered_load=12.0, pool_size=8,
            seed=2026)
        assert constrained["leases"] == [2, 2]
        assert constrained["admission"]["queued"] > 0
        assert constrained["admission"]["dropped"] > \
            unconstrained["admission"]["dropped"]
        assert constrained["completed"] < unconstrained["completed"]

    def test_sweep_carries_budget_and_reports_knees(self):
        pool = ShardedPool(pool_size=8)
        result = pool.sweep((2.0, 8.0), seed=2026, n_instances=240,
                            n_shards=2, global_max_in_flight=6)
        assert len(result["rows"]) == 2
        assert len(result["lease_history"]) == 2
        assert all(sum(leases) == 6 for leases in result["lease_history"])
        assert result["merged_knee"]["verdict"] in (
            "knee", "never_saturated", "all_saturated")
        assert len(result["per_shard_knees"]) == 2


class TestFallbackLogging:
    def test_oserror_falls_back_to_sequential_and_warns(
            self, monkeypatch, caplog):
        import repro.workload.sharding as sharding

        class ExplodingPool:
            def __init__(self, max_workers):
                raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(sharding, "ProcessPoolExecutor", ExplodingPool)
        pool = ShardedPool(pool_size=8, workers=2)
        plan = ShardPlan(seed=1, n_shards=2, n_instances=60,
                         offered_load=4.0)
        with caplog.at_level(logging.WARNING,
                             logger="repro.workload.sharding"):
            result = pool.run(plan)
        assert result["executor"] == "sequential"
        assert result["merged"]["jobs"] == 60
        assert any("falling back" in record.getMessage()
                   for record in caplog.records)


class TestEngineScaleScenario:
    def test_scale_scenario_is_registered_with_a_grid(self):
        scenario = REGISTRY.get("scale")
        assert scenario.grid
        assert all("n_shards" in point for point in scenario.grid)

    def test_parallel_equals_sequential_on_deterministic_fields(self):
        points = [dict(SMALL), dict(SMALL, offered_load=12.0)]
        sequential = run_scenario("scale", points=points)
        parallel = run_scenario("scale", points=points, parallel=True,
                                max_workers=2)
        strip = (lambda row: {key: value for key, value in row.items()
                              if key not in VOLATILE_KEYS})
        assert [strip(row) for row in sequential] == \
            [strip(row) for row in parallel]


class TestBaselineCLI:
    def _fake_scale_document(self):
        return {
            "knee": {"configs": [
                {"n_shards": 1, "merged_knee": {"knee_offered_load": 8.0}}]},
            "backpressure": {"rows": [
                {"admission": {"queued": 5, "dropped": 3}}]},
            "throughput": {"n_instances": 10_000,
                           "speedup_vs_single_shard": 3.5,
                           "speedup_vs_single_shard_parallel": 4.2},
        }

    def test_workers_and_small_flags_reach_the_scale_writer(
            self, monkeypatch, tmp_path, capsys):
        import repro.bench.baseline as baseline
        captured = {}

        def fake_writer(path, small=False, workers=0):
            captured.update(path=path, small=small, workers=workers)
            return self._fake_scale_document()

        monkeypatch.setattr(baseline, "write_scale_baseline", fake_writer)
        output = str(tmp_path / "BENCH_scale.json")
        assert baseline.main(["--suite", "scale", "--small",
                              "--workers", "3", "--output", output]) == 0
        assert captured == {"path": output, "small": True, "workers": 3}
        assert "3.50x vs single shard" in capsys.readouterr().out

    def test_workers_flag_reaches_run_scenario(self, monkeypatch, tmp_path):
        import repro.bench.baseline as baseline
        captured = {}

        def fake_writer(path, parallel=False, max_workers=None):
            captured.update(parallel=parallel, max_workers=max_workers)
            return {"capacity": [], "mixed_traffic": [],
                    "saturation_knee": {"knee_offered_load": None},
                    "oracle_violations": 0,
                    "transactional": [], "transactional_violations": 0,
                    "production_cell": [],
                    "production_cell_violations": 0}

        monkeypatch.setattr(baseline, "write_workload_baseline",
                            fake_writer)
        output = str(tmp_path / "BENCH_workload.json")
        assert baseline.main(["--suite", "workload", "--parallel",
                              "--workers", "5", "--output", output]) == 0
        assert captured == {"parallel": True, "max_workers": 5}
