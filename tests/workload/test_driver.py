"""Tests for the workload driver: overlap, per-instance keying, determinism."""

import pytest

from repro.explore.monitor import InvariantMonitor
from repro.net.latency import ConstantLatency
from repro.runtime.config import RuntimeConfig
from repro.runtime.system import DistributedCASystem, SystemConfigurationError
from repro.workload import (
    AdmissionController,
    OpenLoopPoisson,
    TraceReplay,
    TrafficActionSpec,
    WorkloadDriver,
)


def build_system(pool_size=8, latency=0.02, resolution_time=0.05,
                 algorithm="ours"):
    system = DistributedCASystem(
        RuntimeConfig(algorithm=algorithm, resolution_time=resolution_time),
        latency=ConstantLatency(latency))
    system.add_threads([f"W{i:02d}" for i in range(1, pool_size + 1)])
    return system


def build_driver(system=None, seed=42, **admission):
    system = system or build_system()
    admission.setdefault("queue_capacity", 64)
    driver = WorkloadDriver(system, seed=seed,
                            admission=AdmissionController(**admission))
    return driver


class TestOverlap:
    def test_same_action_instances_overlap(self):
        """Instances of ONE action definition run concurrently on the pool."""
        driver = build_driver()
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=1.0))
        report = driver.run(OpenLoopPoisson(rate=4.0, count=40))
        assert report.jobs == 40
        assert report.completed == 40
        assert report.max_concurrency > 1
        # Cross-check from the job timeline: at least one pair of completed
        # jobs of the same action has overlapping [dispatch, completion).
        intervals = [(job.dispatched_at, job.completed_at)
                     for job in driver.jobs if job.outcome == "completed"]
        overlapping = any(
            a_start < b_end and b_start < a_end
            for i, (a_start, a_end) in enumerate(intervals)
            for (b_start, b_end) in intervals[i + 1:])
        assert overlapping

    def test_instances_get_disjoint_worker_sets_while_overlapping(self):
        driver = build_driver()
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=1.0))
        driver.run(OpenLoopPoisson(rate=4.0, count=30))
        in_flight = []
        events = []
        for job in driver.jobs:
            # Completions sort before dispatches at equal timestamps: a
            # conclusion frees its workers for a same-instant dispatch.
            events.append((job.dispatched_at, 1, job))
            events.append((job.completed_at, 0, job))
        active = {}
        for _, kind, job in sorted(events, key=lambda e: (e[0], e[1])):
            if kind == 1:
                for worker in job.workers:
                    assert worker not in active, \
                        f"{worker} double-booked by {active[worker]} and {job}"
                    active[worker] = job.instance
                in_flight.append(len({v for v in active.values()}))
            else:
                for worker in job.workers:
                    active.pop(worker, None)
        assert max(in_flight) > 1

    def test_faulty_instances_recover_per_instance(self):
        """Concurrent always-raising instances each resolve independently."""
        system = build_system()
        monitor = InvariantMonitor(system)
        driver = build_driver(system)
        driver.add_action(TrafficActionSpec("Flaky", width=2,
                                            mean_service=0.5,
                                            raise_probability=1.0))
        report = driver.run(OpenLoopPoisson(rate=4.0, count=30))
        assert report.max_concurrency > 1
        assert report.outcome_counts == {"recovered": 60}
        assert monitor.check(require_liveness=True) == []
        # One resolution delivery per participant per instance, agreed.
        assert len(monitor.resolutions) == 30
        for deliveries in monitor.resolutions.values():
            assert len(deliveries) == 2
            assert len({name for _, name in deliveries}) == 1


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self):
        rows = []
        for _ in range(2):
            driver = build_driver(max_in_flight=3, queue_capacity=8)
            driver.add_action(TrafficActionSpec("Serve", width=2,
                                                mean_service=1.0,
                                                raise_probability=0.3))
            rows.append(driver.run(OpenLoopPoisson(rate=3.0,
                                                   count=50)).to_row())
        assert rows[0] == rows[1]

    def test_job_profiles_pure_in_seed_and_index(self):
        spec = TrafficActionSpec("Serve", width=3, mean_service=1.0,
                                 raise_probability=0.5)
        from repro.simkernel.rng import SeededStreams
        profiles_a = [spec.draw_profile(SeededStreams(9), i)
                      for i in range(10)]
        profiles_b = [spec.draw_profile(SeededStreams(9), i)
                      for i in reversed(range(10))]
        assert profiles_a == list(reversed(profiles_b))


class TestAdmissionIntegration:
    def test_drop_policy_under_overload(self):
        driver = build_driver(max_in_flight=1, queue_capacity=1)
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=2.0))
        report = driver.run(OpenLoopPoisson(rate=10.0, count=40))
        assert report.dropped > 0
        assert report.completed + report.dropped == 40
        assert report.max_concurrency == 1
        for job in driver.jobs:
            assert job.completion.triggered

    def test_retry_policy_eventually_serves_or_drops(self):
        driver = build_driver(max_in_flight=1, queue_capacity=0,
                              policy="retry", retry_delay=0.5, max_retries=5)
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=0.3))
        report = driver.run(OpenLoopPoisson(rate=5.0, count=30))
        assert report.admission["retried"] > 0
        assert report.completed + report.dropped == 30

    def test_max_in_flight_caps_observed_concurrency(self):
        driver = build_driver(max_in_flight=2, queue_capacity=64)
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=1.0))
        report = driver.run(OpenLoopPoisson(rate=8.0, count=40))
        assert report.max_concurrency == 2


class TestLifecycleHygiene:
    def test_instance_scopes_released_after_completion(self):
        system = build_system()
        driver = build_driver(system)
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=0.5))
        driver.run(OpenLoopPoisson(rate=4.0, count=20))
        assert system._instance_bindings == {}
        assert system._instance_transactions == {}

    def test_instance_lookup_pruned_after_each_job(self):
        driver = build_driver()
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=0.5))
        driver.run(OpenLoopPoisson(rate=4.0, count=20))
        assert driver._by_instance == {}

    def test_mid_run_report_counts_open_intervals(self):
        """mean_concurrency includes the time since the last state change."""
        driver = build_driver()
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=50.0))
        job = driver.submit("Serve")        # dispatched at t=0, long-running
        driver.kernel.run(until=10.0)
        report = driver.report()
        assert job.outcome == "pending"
        assert report.mean_concurrency == pytest.approx(1.0)

    def test_dispatcher_bookkeeping_released_per_instance(self):
        """No O(jobs) growth of barrier/mailbox/signal state per worker."""
        system = build_system()
        driver = build_driver(system)
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=0.5,
                                            raise_probability=0.5))
        driver.run(OpenLoopPoisson(rate=4.0, count=30))
        for partition in system.partitions.values():
            dispatcher = partition.dispatcher
            assert dispatcher._entry_seen == {}
            assert dispatcher._exit_seen == {}
            assert dispatcher._app_mailboxes == {}
            assert dict(dispatcher._pending_signals) == {}

    def test_workers_finish_and_quiescence_is_clean(self):
        system = build_system()
        monitor = InvariantMonitor(system)
        driver = build_driver(system)
        driver.add_action(TrafficActionSpec("Serve", width=2,
                                            mean_service=0.5,
                                            raise_probability=0.5))
        driver.run(OpenLoopPoisson(rate=3.0, count=30))
        assert monitor.check(require_liveness=True) == []
        for partition in system.partitions.values():
            assert partition.thread_process.triggered
            assert partition.status == "idle"
            assert len(partition.coordinator.sa) == 0
            assert partition.coordinator.retained == []

    def test_mixed_width_actions_share_one_pool(self):
        driver = build_driver()
        driver.add_action(TrafficActionSpec("Narrow", width=2,
                                            mean_service=0.5, weight=2.0))
        driver.add_action(TrafficActionSpec("Wide", width=5,
                                            mean_service=1.0))
        report = driver.run(OpenLoopPoisson(rate=3.0, count=40))
        assert report.completed == 40
        actions = {job.action for job in driver.jobs}
        assert actions == {"Narrow", "Wide"}

    def test_trace_pinning_and_per_action_histograms(self):
        driver = build_driver()
        driver.add_action(TrafficActionSpec("A", width=2, mean_service=0.5))
        driver.add_action(TrafficActionSpec("B", width=2, mean_service=0.5))
        report = driver.run(TraceReplay([(0.0, "A"), (0.1, "B"),
                                         (0.2, "A")]))
        assert report.latency_by_action["A"]["count"] == 2
        assert report.latency_by_action["B"]["count"] == 1


class TestConfigurationErrors:
    def test_empty_pool_rejected(self):
        system = DistributedCASystem(RuntimeConfig())
        with pytest.raises(SystemConfigurationError):
            WorkloadDriver(system)

    def test_unknown_pool_name_rejected(self):
        system = build_system(pool_size=2)
        with pytest.raises(SystemConfigurationError):
            WorkloadDriver(system, pool=["W01", "nope"])

    def test_action_wider_than_pool_rejected(self):
        driver = build_driver(build_system(pool_size=2))
        with pytest.raises(SystemConfigurationError):
            driver.add_action(TrafficActionSpec("Huge", width=3))

    def test_instance_binding_validated_like_bind(self):
        system = build_system(pool_size=4)
        driver = build_driver(system)
        driver.add_action(TrafficActionSpec("Serve", width=2))
        with pytest.raises(SystemConfigurationError):
            system.bind_instance("Serve@000000", "Serve", {"r1": "W01"})
        with pytest.raises(SystemConfigurationError):
            system.bind_instance("Serve@000000", "Serve",
                                 {"r1": "W01", "r2": "nope"})
        with pytest.raises(SystemConfigurationError):
            system.bind_instance("", "Serve", {"r1": "W01", "r2": "W02"})


class TestExplicitInstanceRuntime:
    """The runtime-level API the driver builds on, used directly."""

    def test_two_instances_of_one_action_on_disjoint_threads(self):
        from repro.core.action import CAActionDefinition, RoleDefinition
        from repro.core.exception_graph import ExceptionGraph
        from repro.core.handlers import HandlerMap

        system = build_system(pool_size=4, latency=0.05)

        def body(ctx):
            yield ctx.delay(1.0)
            return ctx.instance

        definition = CAActionDefinition(
            "Twin",
            [RoleDefinition("r1", body, HandlerMap()),
             RoleDefinition("r2", body, HandlerMap())],
            graph=ExceptionGraph("Twin"))
        system.define_action(definition)
        system.bind_instance("Twin@a", "Twin", {"r1": "W01", "r2": "W02"})
        system.bind_instance("Twin@b", "Twin", {"r1": "W03", "r2": "W04"})

        def program(role, instance):
            def run(ctx):
                report = yield from ctx.perform_action("Twin", role,
                                                       instance=instance)
                return report
            return run

        system.spawn("W01", program("r1", "Twin@a"))
        system.spawn("W02", program("r2", "Twin@a"))
        system.spawn("W03", program("r1", "Twin@b"))
        system.spawn("W04", program("r2", "Twin@b"))
        reports = system.run_to_completion()
        assert [r.status.value for r in reports] == ["success"] * 4
        assert [r.result for r in reports] == \
            ["Twin@a", "Twin@a", "Twin@b", "Twin@b"]
        # Both instances overlapped in virtual time (same start, same length).
        assert system.now == pytest.approx(1.0, abs=0.5)
