"""Unit tests for the admission controller (no kernel involved)."""

import pytest

from repro.workload.admission import (
    DISPATCH,
    DROP,
    QUEUE,
    RETRY,
    AdmissionController,
)


class FakeJob:
    def __init__(self, width=2):
        self.width = width
        self.attempts = 0


class TestOffer:
    def test_dispatches_when_slot_and_workers_free(self):
        controller = AdmissionController(max_in_flight=2, queue_capacity=4)
        job = FakeJob()
        assert controller.offer(job, placeable=True) == DISPATCH
        assert job.attempts == 1
        assert controller.stats.arrived == 1

    def test_queues_when_not_placeable(self):
        controller = AdmissionController(max_in_flight=2, queue_capacity=4)
        job = FakeJob()
        assert controller.offer(job, placeable=False) == QUEUE
        assert list(controller.queue) == [job]
        assert controller.stats.queued == 1

    def test_queues_when_in_flight_limit_reached(self):
        controller = AdmissionController(max_in_flight=1, queue_capacity=4)
        first = FakeJob()
        assert controller.offer(first, placeable=True) == DISPATCH
        controller.job_dispatched(first)
        assert controller.offer(FakeJob(), placeable=True) == QUEUE

    def test_unlimited_in_flight(self):
        controller = AdmissionController(max_in_flight=None)
        for _ in range(100):
            job = FakeJob()
            assert controller.offer(job, placeable=True) == DISPATCH
            controller.job_dispatched(job)
        assert controller.stats.max_in_flight == 100

    def test_drops_when_queue_full(self):
        controller = AdmissionController(max_in_flight=1, queue_capacity=1)
        busy = FakeJob()
        controller.offer(busy, placeable=True)
        controller.job_dispatched(busy)
        assert controller.offer(FakeJob(), placeable=True) == QUEUE
        assert controller.offer(FakeJob(), placeable=True) == DROP
        assert controller.stats.dropped == 1

    def test_zero_capacity_queue_drops_immediately(self):
        controller = AdmissionController(max_in_flight=1, queue_capacity=0)
        busy = FakeJob()
        controller.offer(busy, placeable=True)
        controller.job_dispatched(busy)
        assert controller.offer(FakeJob(), placeable=True) == DROP

    def test_new_arrival_does_not_jump_the_queue(self):
        # Even with a free slot, a non-empty queue keeps FIFO order.
        controller = AdmissionController(max_in_flight=4, queue_capacity=4)
        queued = FakeJob(width=3)
        assert controller.offer(queued, placeable=False) == QUEUE
        assert controller.offer(FakeJob(width=1), placeable=True) == QUEUE

    def test_retry_policy_then_exhaustion(self):
        controller = AdmissionController(max_in_flight=1, queue_capacity=0,
                                         policy="retry", max_retries=2)
        busy = FakeJob()
        controller.offer(busy, placeable=True)
        controller.job_dispatched(busy)
        job = FakeJob()
        assert controller.offer(job, placeable=True) == RETRY
        assert controller.offer(job, placeable=True) == RETRY
        assert controller.offer(job, placeable=True) == DROP
        assert controller.stats.retried == 2
        assert controller.stats.dropped == 1
        # Re-offers are not new arrivals.
        assert controller.stats.arrived == 2

    def test_retry_job_can_still_dispatch_later(self):
        controller = AdmissionController(max_in_flight=1, queue_capacity=0,
                                         policy="retry", max_retries=3)
        busy = FakeJob()
        controller.offer(busy, placeable=True)
        controller.job_dispatched(busy)
        job = FakeJob()
        assert controller.offer(job, placeable=True) == RETRY
        controller.job_finished(busy)
        assert controller.offer(job, placeable=True) == DISPATCH


class TestPopPlaceable:
    def test_fifo_with_head_of_line_blocking(self):
        controller = AdmissionController(max_in_flight=8, queue_capacity=8)
        wide = FakeJob(width=4)
        narrow = FakeJob(width=1)
        controller.offer(wide, placeable=False)
        controller.offer(narrow, placeable=False)
        # Only 2 workers free: the wide head blocks the narrow job too.
        assert controller.pop_placeable(lambda j: j.width <= 2) is None
        # 4 workers free: the head goes first.
        assert controller.pop_placeable(lambda j: j.width <= 4) is wide
        assert controller.pop_placeable(lambda j: j.width <= 4) is narrow
        assert controller.pop_placeable(lambda j: True) is None

    def test_respects_in_flight_limit(self):
        controller = AdmissionController(max_in_flight=1, queue_capacity=8)
        busy = FakeJob()
        controller.offer(busy, placeable=True)
        controller.job_dispatched(busy)
        controller.offer(FakeJob(), placeable=True)
        assert controller.pop_placeable(lambda j: True) is None
        controller.job_finished(busy)
        assert controller.pop_placeable(lambda j: True) is not None


class TestValidationAndStats:
    @pytest.mark.parametrize("kwargs", [
        {"max_in_flight": 0},
        {"queue_capacity": -1},
        {"policy": "explode"},
        {"retry_delay": -0.1},
        {"max_retries": -1},
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)

    def test_stats_snapshot_is_plain_and_complete(self):
        controller = AdmissionController(max_in_flight=2, queue_capacity=2)
        job = FakeJob()
        controller.offer(job, placeable=True)
        controller.job_dispatched(job)
        controller.job_finished(job)
        snapshot = controller.stats.snapshot()
        assert snapshot == {
            "arrived": 1, "dispatched": 1, "queued": 0, "retried": 0,
            "dropped": 0, "completed": 1, "max_queue_length": 0,
            "max_in_flight": 1,
        }

    def test_describe_reports_configuration(self):
        controller = AdmissionController(max_in_flight=3, queue_capacity=5,
                                         policy="retry", retry_delay=0.25,
                                         max_retries=7)
        assert controller.describe() == {
            "max_in_flight": 3, "queue_capacity": 5, "policy": "retry",
            "retry_delay": 0.25, "max_retries": 7,
        }
