"""Tests for the capacity / mixed-traffic scenarios and their façades."""

import json

import pytest

from repro.bench import capacity_table, mixed_traffic_table, run_scenario
from repro.workload.scenarios import (
    run_capacity_point,
    run_mixed_traffic,
    saturation_knee,
)


class TestCapacityPoint:
    def test_acceptance_point_200_instances_with_overlap(self):
        """The acceptance bar: ≥200 instances, observed concurrency > 1."""
        row = run_capacity_point(offered_load=2.0, n_instances=200)
        assert row["jobs"] == 200
        assert row["completed"] + row["dropped"] == 200
        assert row["max_concurrency"] > 1
        assert row["latency_p50"] is not None
        assert row["latency_p99"] >= row["latency_p50"]
        assert row["throughput"] > 0
        json.dumps(row)  # every row is JSON-serializable

    def test_light_load_keeps_up_heavy_load_saturates(self):
        light = run_capacity_point(offered_load=1.0, n_instances=200)
        heavy = run_capacity_point(offered_load=8.0, n_instances=200)
        assert light["throughput"] >= 0.9 * 1.0
        assert heavy["throughput"] < 0.9 * 8.0
        assert heavy["latency_p99"] > light["latency_p99"]

    def test_pure_function_of_parameters(self):
        first = run_capacity_point(offered_load=2.0, n_instances=100)
        second = run_capacity_point(offered_load=2.0, n_instances=100)
        assert first == second


class TestSaturationKnee:
    def test_finds_the_last_point_that_keeps_up(self):
        rows = [
            {"offered_load": 1.0, "throughput": 1.0, "latency_p99": 2.0},
            {"offered_load": 2.0, "throughput": 1.95, "latency_p99": 3.0},
            {"offered_load": 4.0, "throughput": 2.6, "latency_p99": 9.0},
        ]
        knee = saturation_knee(rows)
        assert knee["verdict"] == "knee"
        assert knee["knee_offered_load"] == 2.0
        assert knee["knee_latency_p99"] == 3.0
        assert knee["saturated_loads"] == [4.0]

    def test_nothing_keeps_up(self):
        rows = [{"offered_load": 4.0, "throughput": 1.0, "latency_p99": 9.0}]
        knee = saturation_knee(rows)
        assert knee["verdict"] == "all_saturated"
        assert knee["knee_offered_load"] is None
        assert knee["saturated_loads"] == [4.0]

    def test_single_keeping_up_row_is_a_lower_bound_not_a_knee(self):
        # One row that keeps up: the sweep never saturated, so the
        # reported load is a lower bound on capacity, flagged as such.
        rows = [{"offered_load": 1.0, "throughput": 1.0, "latency_p99": 2.0}]
        knee = saturation_knee(rows)
        assert knee["verdict"] == "never_saturated"
        assert knee["knee_offered_load"] == 1.0
        assert knee["saturated_loads"] == []

    def test_never_saturated_sweep(self):
        rows = [
            {"offered_load": 1.0, "throughput": 1.0, "latency_p99": 2.0},
            {"offered_load": 2.0, "throughput": 2.0, "latency_p99": 2.1},
            {"offered_load": 4.0, "throughput": 3.9, "latency_p99": 2.4},
        ]
        knee = saturation_knee(rows)
        assert knee["verdict"] == "never_saturated"
        assert knee["knee_offered_load"] == 4.0
        assert knee["saturated_loads"] == []

    def test_all_saturated_sweep(self):
        rows = [
            {"offered_load": 2.0, "throughput": 1.0, "latency_p99": 8.0},
            {"offered_load": 4.0, "throughput": 1.1, "latency_p99": 9.0},
        ]
        knee = saturation_knee(rows)
        assert knee["verdict"] == "all_saturated"
        assert knee["knee_offered_load"] is None
        assert knee["saturated_loads"] == [2.0, 4.0]

    def test_bracketed_sweep_has_knee_verdict(self):
        rows = [
            {"offered_load": 1.0, "throughput": 1.0, "latency_p99": 2.0},
            {"offered_load": 4.0, "throughput": 2.6, "latency_p99": 9.0},
        ]
        assert saturation_knee(rows)["verdict"] == "knee"

    def test_empty_sweep_is_an_error(self):
        with pytest.raises(ValueError):
            saturation_knee([])

    def test_order_independent(self):
        rows = [
            {"offered_load": 4.0, "throughput": 2.6, "latency_p99": 9.0},
            {"offered_load": 1.0, "throughput": 1.0, "latency_p99": 2.0},
        ]
        assert saturation_knee(rows)["knee_offered_load"] == 1.0

    def test_non_monotone_curve_keeps_knee_before_first_failure(self):
        # A point that happens to keep up again beyond the first failure
        # must not move the knee outward past a saturated load.
        rows = [
            {"offered_load": 1.0, "throughput": 1.0, "latency_p99": 2.0},
            {"offered_load": 2.0, "throughput": 1.5, "latency_p99": 8.0},
            {"offered_load": 3.0, "throughput": 2.9, "latency_p99": 9.0},
        ]
        knee = saturation_knee(rows)
        assert knee["knee_offered_load"] == 1.0
        assert knee["saturated_loads"] == [2.0, 3.0]


class TestMixedTraffic:
    def test_acceptance_run_is_oracle_clean(self):
        """Concurrent heterogeneous traffic + noise: every oracle holds."""
        row = run_mixed_traffic(seed=2026, n_instances=200)
        assert row["jobs"] == 200
        assert row["violations"] == []
        assert row["max_concurrency"] > 1
        assert row["resolutions"] > 0          # faults really happened
        assert row["faults_delayed"] > 0       # noise really applied
        assert set(row["outcomes"]) <= {"success", "recovered"}
        json.dumps(row)

    def test_baseline_algorithms_survive_concurrent_instances(self):
        """CR and R96 round messages are instance-stamped too: overlapping
        instances of one action name stay oracle-clean under noise."""
        for algorithm in ("campbell-randell", "romanovsky96"):
            row = run_mixed_traffic(seed=2026, n_instances=60,
                                    algorithm=algorithm)
            assert row["violations"] == [], algorithm
            assert row["max_concurrency"] > 1
            assert row["resolutions"] > 0

    def test_noise_plan_is_delivery_preserving_and_seeded(self):
        from repro.workload.scenarios import _noise_plan
        plan_a = _noise_plan(7, 8, 6, 0.4)
        plan_b = _noise_plan(7, 8, 6, 0.4)
        assert plan_a.preserves_delivery()
        assert [d.to_dict() for d in plan_a.directives] == \
            [d.to_dict() for d in plan_b.directives]
        assert _noise_plan(8, 8, 6, 0.4).directives != plan_a.directives


class TestEngineIntegration:
    POINTS = [{"offered_load": 1.0, "n_instances": 200},
              {"offered_load": 4.0, "n_instances": 200}]

    def test_capacity_parallel_equals_sequential(self):
        sequential = run_scenario("capacity", points=self.POINTS)
        parallel = run_scenario("capacity", points=self.POINTS, parallel=True)
        assert parallel == sequential

    def test_mixed_traffic_parallel_equals_sequential(self):
        points = [{"seed": 2026, "n_instances": 200},
                  {"seed": 2027, "n_instances": 200}]
        sequential = run_scenario("mixed_traffic", points=points)
        parallel = run_scenario("mixed_traffic", points=points, parallel=True)
        assert parallel == sequential
        assert all(row["violations"] == [] for row in sequential)

    def test_tables_facade(self):
        capacity = capacity_table(offered_loads=[1.0], n_instances=60)
        assert len(capacity) == 1 and capacity[0]["offered_load"] == 1.0
        mixed = mixed_traffic_table(seeds=[2026], n_instances=60)
        assert len(mixed) == 1 and mixed[0]["violations"] == []


class TestWorkloadBaseline:
    def test_writer_produces_committed_schema(self, tmp_path):
        from repro.bench import write_workload_baseline
        path = tmp_path / "BENCH_workload.json"
        document = write_workload_baseline(
            str(path),
            capacity_points=[{"offered_load": 1.0, "n_instances": 60},
                             {"offered_load": 8.0, "n_instances": 60}],
            mixed_points=[{"seed": 2026, "n_instances": 60}])
        on_disk = json.loads(path.read_text())
        assert on_disk == document
        assert on_disk["schema"] == 1
        assert on_disk["oracle_violations"] == 0
        assert {"knee_offered_load", "saturated_loads"} <= \
            set(on_disk["saturation_knee"])
