"""Tests for the model's building blocks: descriptors, handlers, state, actions."""

import pytest

from repro.core import (
    ABORTION,
    ActionContext,
    ActionDefinitionError,
    ActionRegistry,
    CAActionDefinition,
    ContextStack,
    ExceptionDescriptor,
    ExceptionGraph,
    ExceptionKind,
    FAILURE,
    HandlerMap,
    HandlerResult,
    HandlerStatus,
    LocalExceptionList,
    NO_EXCEPTION,
    RaisedRecord,
    RoleDefinition,
    UNDO,
    UNIVERSAL,
    default_abort_handler,
    interface,
    internal,
    max_thread,
    min_thread,
    thread_order_key,
)
from repro.core.handlers import is_generator_handler, normalise_result


# ----------------------------------------------------------------------
# Exception descriptors
# ----------------------------------------------------------------------
class TestDescriptors:
    def test_equality_by_name_and_kind(self):
        assert internal("x") == internal("x")
        assert internal("x") != interface("x")
        assert internal("x") != internal("y")

    def test_hashable_and_usable_in_sets(self):
        assert len({internal("x"), internal("x"), internal("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ExceptionDescriptor("")

    def test_special_exceptions_have_expected_kinds(self):
        assert UNDO.kind is ExceptionKind.UNDO
        assert FAILURE.kind is ExceptionKind.FAILURE
        assert UNIVERSAL.kind is ExceptionKind.UNIVERSAL
        assert ABORTION.kind is ExceptionKind.ABORTION
        assert NO_EXCEPTION.kind is ExceptionKind.NONE
        assert all(e.is_special for e in (UNDO, FAILURE, UNIVERSAL, NO_EXCEPTION))
        assert not internal("plain").is_special

    def test_raised_record_suspension_flag(self):
        assert RaisedRecord("A", "T1", None).is_suspension
        assert not RaisedRecord("A", "T1", internal("e")).is_suspension


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------
class TestHandlers:
    def test_result_factories(self):
        assert HandlerResult.success().status is HandlerStatus.SUCCESS
        assert HandlerResult.abort().exception == UNDO
        assert HandlerResult.failed().exception == FAILURE
        signalled = HandlerResult.signal(interface("eps"))
        assert signalled.status is HandlerStatus.SIGNAL
        assert signalled.exception.name == "eps"

    def test_normalise_result_accepts_none_and_descriptor(self):
        assert normalise_result(None).status is HandlerStatus.SUCCESS
        result = normalise_result(interface("eps"))
        assert result.status is HandlerStatus.SIGNAL
        with pytest.raises(TypeError):
            normalise_result(42)

    def test_lookup_prefers_specific_handler(self):
        fault = internal("fault")
        specific = lambda ctx: HandlerResult.success()
        default = lambda ctx: HandlerResult.failed()
        handlers = HandlerMap({fault: specific}, default_handler=default)
        assert handlers.lookup(fault) is specific
        assert handlers.lookup(internal("other")) is default

    def test_lookup_falls_back_to_default_abort_handler(self):
        handlers = HandlerMap()
        handler = handlers.lookup(internal("anything"))
        assert handler is default_abort_handler
        assert handler(None).status is HandlerStatus.ABORT

    def test_abortion_handler_lookup(self):
        abortion = lambda ctx: HandlerResult.success()
        handlers = HandlerMap(abortion_handler=abortion)
        assert handlers.lookup(ABORTION) is abortion

    def test_register_and_declared(self):
        handlers = HandlerMap()
        fault = internal("fault")
        handlers.register(fault, lambda ctx: None)
        handlers.register_abortion(lambda ctx: None)
        assert handlers.has_specific(fault)
        assert handlers.declared() == [fault]
        assert len(handlers) == 1

    def test_generator_handler_detection(self):
        def plain(ctx):
            return None

        def generator(ctx):
            yield None

        assert not is_generator_handler(plain)
        assert is_generator_handler(generator)


# ----------------------------------------------------------------------
# Protocol state: ActionContext, ContextStack, LocalExceptionList
# ----------------------------------------------------------------------
class TestThreadOrdering:
    def test_numeric_suffixes_compare_numerically(self):
        assert thread_order_key("T9") < thread_order_key("T10")
        assert thread_order_key("T9") < thread_order_key("T64")
        assert max_thread(["T1", "T9", "T64"]) == "T64"
        assert min_thread(["T10", "T2", "T9"]) == "T2"

    def test_plain_text_ids_compare_lexicographically(self):
        assert max_thread(["alpha", "beta"]) == "beta"
        assert thread_order_key("alpha") < thread_order_key("beta")

    def test_mixed_chunks(self):
        assert thread_order_key("node2cpu10") < thread_order_key("node2cpu11")
        assert thread_order_key("node2cpu10") < thread_order_key("node10cpu1")

    def test_equal_naturalisations_still_totally_ordered(self):
        # "T09" and "T9" naturalise to the same chunks; the raw id
        # tie-break keeps the order total so every node agrees.
        assert thread_order_key("T09") != thread_order_key("T9")
        assert thread_order_key("T09") < thread_order_key("T9")
        assert max_thread(["T9", "T09"]) == max_thread(["T09", "T9"]) == "T9"

    def test_sorted_participants_use_natural_order(self):
        threads = tuple(f"T{i}" for i in (10, 2, 1, 64, 9))
        context = ActionContext("A", threads, ExceptionGraph("A"))
        assert context.participants == ("T1", "T2", "T9", "T10", "T64")


class TestProtocolState:
    def test_context_orders_participants(self):
        context = ActionContext("A", ("T3", "T1", "T2"), ExceptionGraph("A"))
        assert context.participants == ("T1", "T2", "T3")
        assert context.others("T2") == ("T1", "T3")

    def test_context_requires_participants(self):
        with pytest.raises(ValueError):
            ActionContext("A", (), ExceptionGraph("A"))

    def make_stack(self):
        stack = ContextStack()
        for name in ("Outer", "Middle", "Inner"):
            stack.push(ActionContext(name, ("T1",), ExceptionGraph(name)))
        return stack

    def test_stack_push_pop_top(self):
        stack = self.make_stack()
        assert stack.top().action == "Inner"
        assert stack.depth() == 3
        assert stack.pop().action == "Inner"
        assert stack.top().action == "Middle"

    def test_stack_find_and_contains(self):
        stack = self.make_stack()
        assert stack.contains("Middle")
        assert stack.find("Outer").action == "Outer"
        assert stack.find("Nowhere") is None

    def test_actions_between_top_and(self):
        stack = self.make_stack()
        assert stack.actions_between_top_and("Outer") == ["Inner", "Middle"]
        assert stack.actions_between_top_and("Inner") == []
        with pytest.raises(KeyError):
            stack.actions_between_top_and("Nowhere")

    def test_pop_until(self):
        stack = self.make_stack()
        popped = stack.pop_until("Outer")
        assert [context.action for context in popped] == ["Inner", "Middle"]
        assert stack.top().action == "Outer"
        with pytest.raises(KeyError):
            stack.pop_until("Gone")

    def test_pop_empty_stack_raises(self):
        with pytest.raises(IndexError):
            ContextStack().pop()

    def test_le_add_replaces_per_thread(self):
        le = LocalExceptionList()
        fault = internal("fault")
        le.add(RaisedRecord("A", "T1", None))               # suspension
        le.add(RaisedRecord("A", "T1", fault))              # later raise
        assert len(le) == 1
        assert le.exceptional_threads("A") == {"T1"}

    def test_le_queries(self):
        le = LocalExceptionList()
        e1, e2 = internal("e1"), internal("e2")
        le.add(RaisedRecord("A", "T1", e1))
        le.add(RaisedRecord("A", "T2", None))
        le.add(RaisedRecord("B", "T3", e2))
        assert le.threads_reported("A") == {"T1", "T2"}
        assert le.exceptions_for("A") == [e1]
        assert le.exceptional_threads("A") == {"T1"}
        le.remove_other_actions("A")
        assert le.threads_reported("B") == set()

    def test_le_keep_only_and_clear(self):
        le = LocalExceptionList()
        record = RaisedRecord("A", "T1", internal("e1"))
        le.add(record)
        le.add(RaisedRecord("A", "T2", internal("e2")))
        le.keep_only(record)
        assert list(le) == [record]
        le.clear()
        assert len(le) == 0


# ----------------------------------------------------------------------
# CA action definitions and the registry
# ----------------------------------------------------------------------
class TestActionDefinitions:
    def make_action(self, name="A", parent=None, interface_exceptions=()):
        return CAActionDefinition(
            name,
            [RoleDefinition("r1"), RoleDefinition("r2")],
            internal_exceptions=[internal("fault")],
            interface_exceptions=interface_exceptions,
            parent=parent)

    def test_roles_and_lookup(self):
        action = self.make_action()
        assert action.role_names == ["r1", "r2"]
        assert action.role("r1").name == "r1"
        with pytest.raises(ActionDefinitionError):
            action.role("missing")

    def test_abortion_and_special_exceptions_included(self):
        action = self.make_action()
        assert ABORTION in action.internal_exceptions
        assert UNDO in action.interface_exceptions
        assert FAILURE in action.interface_exceptions

    def test_graph_defaults_to_flat_graph_over_internal_exceptions(self):
        action = self.make_action()
        assert internal("fault") in action.graph
        action.graph.validate()

    def test_duplicate_roles_rejected(self):
        with pytest.raises(ActionDefinitionError):
            CAActionDefinition("A", [RoleDefinition("r"), RoleDefinition("r")])

    def test_empty_roles_rejected(self):
        with pytest.raises(ActionDefinitionError):
            CAActionDefinition("A", [])

    def test_nesting_validation_accepts_subset(self):
        eps = interface("eps")
        enclosing = CAActionDefinition(
            "Outer", [RoleDefinition("r1")], internal_exceptions=[eps])
        nested = CAActionDefinition(
            "Inner", [RoleDefinition("r1")], interface_exceptions=[eps],
            parent="Outer")
        nested.validate_nesting(enclosing)   # must not raise

    def test_nesting_validation_rejects_undeclared_interface_exception(self):
        enclosing = CAActionDefinition("Outer", [RoleDefinition("r1")])
        nested = CAActionDefinition(
            "Inner", [RoleDefinition("r1")],
            interface_exceptions=[interface("surprise")], parent="Outer")
        with pytest.raises(ActionDefinitionError):
            nested.validate_nesting(enclosing)

    def test_nesting_validation_exempts_undo_and_failure(self):
        enclosing = CAActionDefinition("Outer", [RoleDefinition("r1")])
        nested = CAActionDefinition("Inner", [RoleDefinition("r1")],
                                    parent="Outer")
        nested.validate_nesting(enclosing)   # µ and ƒ are always allowed

    def test_registry_register_and_lookup(self):
        registry = ActionRegistry()
        outer = self.make_action("Outer")
        registry.register(outer)
        assert "Outer" in registry
        assert registry.get("Outer") is outer
        with pytest.raises(ActionDefinitionError):
            registry.get("Missing")

    def test_registry_rejects_duplicates(self):
        registry = ActionRegistry()
        registry.register(self.make_action("A"))
        with pytest.raises(ActionDefinitionError):
            registry.register(self.make_action("A"))

    def test_registry_nesting_depth_and_children(self):
        registry = ActionRegistry()
        registry.register(self.make_action("Outer"))
        registry.register(self.make_action("Middle", parent="Outer"))
        registry.register(self.make_action("Inner", parent="Middle"))
        assert registry.nesting_depth("Outer") == 0
        assert registry.nesting_depth("Inner") == 2
        assert registry.max_nesting() == 2
        assert [child.name for child in registry.children_of("Outer")] == \
            ["Middle"]
