"""Tests for effects, protocol messages and the runtime report types."""

import pytest

from repro.core import (
    ApplicationMessage,
    CommitMessage,
    EnterActionMessage,
    ExceptionMessage,
    ExitReadyMessage,
    SuspendedMessage,
    ToBeSignalledMessage,
    count_messages,
    internal,
    sends,
)
from repro.core.effects import AbortNested, ChargeTime, LogEvent, SendTo
from repro.core.exceptions import (
    ActionAborted,
    ActionFailure,
    NO_EXCEPTION,
    RaisedException,
    UNDO,
)
from repro.core.messages import (
    RESOLUTION_MESSAGE_TYPES,
    SIGNALLING_MESSAGE_TYPES,
)
from repro.runtime import ActionStatus
from repro.runtime.report import ActionReport

FAULT = internal("fault")


class TestEffects:
    def test_sendto_normalises_recipients_to_tuple(self):
        effect = SendTo(["T1", "T2"], ExceptionMessage("A", "T3", FAULT))
        assert effect.recipients == ("T1", "T2")

    def test_sends_and_count_messages_helpers(self):
        effects = [
            SendTo(("T1", "T2"), ExceptionMessage("A", "T3", FAULT)),
            LogEvent("noise"),
            SendTo(("T1",), CommitMessage("A", "T3", FAULT)),
            ChargeTime("resolution"),
        ]
        assert len(sends(effects)) == 2
        assert count_messages(effects) == 3

    def test_abort_nested_normalises_actions(self):
        effect = AbortNested(["Inner", "Middle"], resume_action="Outer")
        assert effect.actions == ("Inner", "Middle")

    def test_effects_are_immutable(self):
        effect = SendTo(("T1",), SuspendedMessage("A", "T2"))
        with pytest.raises(Exception):
            effect.recipients = ("T9",)


class TestMessages:
    def test_protocol_messages_are_hashable_value_objects(self):
        a = ExceptionMessage("A", "T1", FAULT)
        b = ExceptionMessage("A", "T1", FAULT)
        assert a == b and hash(a) == hash(b)
        assert a != SuspendedMessage("A", "T1")

    def test_signalling_message_carries_round_number(self):
        message = ToBeSignalledMessage("A", "T1", UNDO, round_number=2)
        assert message.round_number == 2

    def test_entry_exit_messages_carry_instance(self):
        enter = EnterActionMessage("A", "T1", "r1", "A#3")
        leave = ExitReadyMessage("A", "T1", "success", "A#3")
        assert enter.instance == leave.instance == "A#3"

    def test_application_message_fields(self):
        message = ApplicationMessage("A#1", "T1", "T2", "ping", {"x": 1})
        assert message.tag == "ping" and message.body == {"x": 1}

    def test_type_name_registries(self):
        assert "CommitMessage" in RESOLUTION_MESSAGE_TYPES
        assert SIGNALLING_MESSAGE_TYPES == ("ToBeSignalledMessage",)


class TestPythonLevelExceptions:
    def test_raised_exception_carries_descriptor_and_detail(self):
        raised = RaisedException(FAULT, {"sensor": 3})
        assert raised.descriptor == FAULT
        assert raised.detail == {"sensor": 3}

    def test_action_aborted_and_failure_carriers(self):
        aborted = ActionAborted("Inner", FAULT)
        assert aborted.action_name == "Inner" and aborted.cause == FAULT
        failure = ActionFailure("Outer", UNDO)
        assert "Outer" in str(failure) and failure.signalled == UNDO


class TestActionReport:
    def test_ok_property(self):
        assert ActionReport("A", "r", "T", ActionStatus.SUCCESS).ok
        assert ActionReport("A", "r", "T", ActionStatus.RECOVERED).ok
        assert not ActionReport("A", "r", "T", ActionStatus.FAILED).ok
        assert not ActionReport("A", "r", "T",
                                ActionStatus.ABORTED_BY_ENCLOSING).ok

    def test_duration_and_default_signal(self):
        report = ActionReport("A", "r", "T", ActionStatus.SUCCESS,
                              started_at=1.0, finished_at=3.5)
        assert report.duration == 2.5
        assert report.signalled == NO_EXCEPTION
