"""Tests of the exception-signalling algorithm (Section 3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActionContext,
    ExceptionGraph,
    FAILURE,
    NO_EXCEPTION,
    SignalCoordinator,
    SignalProtocolError,
    ToBeSignalledMessage,
    UNDO,
    interface,
)
from repro.core.effects import SendTo
from repro.core.signalling import PerformUndo, SignalOutcome

EPS1 = interface("eps1")
EPS2 = interface("eps2")


class SignallingDriver:
    """Delivers toBeSignalled messages between signalling coordinators."""

    def __init__(self, threads, action="A"):
        context = ActionContext(action, tuple(threads), ExceptionGraph(action))
        self.coordinators = {t: SignalCoordinator(t, context) for t in threads}
        self.inflight = []
        self.outcomes = {}
        self.undo_requested = set()
        self.messages = 0

    def execute(self, sender, effects):
        for effect in effects:
            if isinstance(effect, SendTo):
                self.messages += len(effect.recipients)
                for recipient in effect.recipients:
                    self.inflight.append((recipient, effect.message))
            elif isinstance(effect, SignalOutcome):
                self.outcomes[sender] = effect.exception
            elif isinstance(effect, PerformUndo):
                self.undo_requested.add(sender)

    def propose(self, thread, exception):
        self.execute(thread, self.coordinators[thread].propose(exception))

    def undo_completed(self, thread, ok):
        self.execute(thread, self.coordinators[thread].undo_completed(ok))

    def deliver_all(self):
        while self.inflight:
            recipient, message = self.inflight.pop(0)
            self.execute(recipient,
                         self.coordinators[recipient].receive(message))


class TestSimpleCases:
    def test_each_thread_signals_its_own_exception(self):
        driver = SignallingDriver(("T1", "T2", "T3"))
        driver.propose("T1", EPS1)
        driver.propose("T2", EPS2)
        driver.propose("T3", None)
        driver.deliver_all()
        assert driver.outcomes == {"T1": EPS1, "T2": EPS2, "T3": NO_EXCEPTION}

    def test_no_exception_at_all_signals_phi_everywhere(self):
        driver = SignallingDriver(("T1", "T2"))
        driver.propose("T1", None)
        driver.propose("T2", None)
        driver.deliver_all()
        assert set(driver.outcomes.values()) == {NO_EXCEPTION}

    def test_message_count_simple_case(self):
        driver = SignallingDriver(tuple(f"T{i}" for i in range(1, 6)))
        for thread in driver.coordinators:
            driver.propose(thread, None)
        driver.deliver_all()
        assert driver.messages == 5 * 4

    def test_failure_anywhere_forces_failure_everywhere(self):
        driver = SignallingDriver(("T1", "T2", "T3"))
        driver.propose("T1", EPS1)
        driver.propose("T2", FAILURE)
        driver.propose("T3", None)
        driver.deliver_all()
        assert set(driver.outcomes.values()) == {FAILURE}


class TestUndoCoordination:
    def test_undo_requires_everyone_to_perform_undo(self):
        driver = SignallingDriver(("T1", "T2", "T3"))
        driver.propose("T1", UNDO)
        driver.propose("T2", None)
        driver.propose("T3", EPS1)
        driver.deliver_all()
        assert driver.undo_requested == {"T1", "T2", "T3"}
        assert driver.outcomes == {}

    def test_all_undos_succeed_then_everyone_signals_mu(self):
        driver = SignallingDriver(("T1", "T2"))
        driver.propose("T1", UNDO)
        driver.propose("T2", None)
        driver.deliver_all()
        for thread in ("T1", "T2"):
            driver.undo_completed(thread, True)
        driver.deliver_all()
        assert set(driver.outcomes.values()) == {UNDO}

    def test_failed_undo_degrades_to_failure(self):
        driver = SignallingDriver(("T1", "T2", "T3"))
        driver.propose("T1", UNDO)
        driver.propose("T2", None)
        driver.propose("T3", None)
        driver.deliver_all()
        driver.undo_completed("T1", True)
        driver.undo_completed("T2", False)
        driver.undo_completed("T3", True)
        driver.deliver_all()
        assert set(driver.outcomes.values()) == {FAILURE}

    def test_worst_case_message_count(self):
        n = 4
        driver = SignallingDriver(tuple(f"T{i}" for i in range(1, n + 1)))
        driver.propose("T1", UNDO)
        for thread in list(driver.coordinators)[1:]:
            driver.propose(thread, None)
        driver.deliver_all()
        for thread in driver.coordinators:
            driver.undo_completed(thread, True)
        driver.deliver_all()
        assert driver.messages == 2 * n * (n - 1)

    def test_undo_completed_outside_undo_round_rejected(self):
        driver = SignallingDriver(("T1", "T2"))
        with pytest.raises(SignalProtocolError):
            driver.coordinators["T1"].undo_completed(True)


class TestProtocolEdgeCases:
    def test_double_propose_rejected(self):
        driver = SignallingDriver(("T1", "T2"))
        driver.propose("T1", None)
        with pytest.raises(SignalProtocolError):
            driver.coordinators["T1"].propose(EPS1)

    def test_propose_after_decision_rejected(self):
        driver = SignallingDriver(("T1", "T2"))
        driver.propose("T1", None)
        driver.propose("T2", None)
        driver.deliver_all()
        with pytest.raises(SignalProtocolError):
            driver.coordinators["T1"].propose(EPS1)

    def test_message_for_other_action_ignored(self):
        driver = SignallingDriver(("T1", "T2"))
        effects = driver.coordinators["T1"].receive(
            ToBeSignalledMessage("other-action", "T2", EPS1, 1))
        assert not any(isinstance(e, SignalOutcome) for e in effects)

    def test_peer_failure_counts_as_failure_proposal(self):
        driver = SignallingDriver(("T1", "T2", "T3"))
        driver.propose("T1", EPS1)
        driver.propose("T2", None)
        # T3 crashed: its silence is converted into ƒ by the survivors.
        for thread in ("T1", "T2"):
            driver.execute(thread,
                           driver.coordinators[thread].peer_failed("T3"))
        driver.deliver_all()
        assert driver.outcomes["T1"] == FAILURE
        assert driver.outcomes["T2"] == FAILURE

    def test_single_participant_decides_alone(self):
        driver = SignallingDriver(("T1",))
        driver.propose("T1", EPS1)
        assert driver.outcomes == {"T1": EPS1}
        assert driver.messages == 0

    @given(proposals=st.lists(
        st.sampled_from([None, "eps", "undo", "failure"]),
        min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_property_mu_and_f_outcomes_are_unanimous(self, proposals):
        threads = tuple(f"T{i}" for i in range(len(proposals)))
        driver = SignallingDriver(threads)
        mapping = {"eps": EPS1, "undo": UNDO, "failure": FAILURE, None: None}
        for thread, proposal in zip(threads, proposals):
            driver.propose(thread, mapping[proposal])
        driver.deliver_all()
        if driver.undo_requested:
            for thread in threads:
                driver.undo_completed(thread, True)
            driver.deliver_all()
        values = set(driver.outcomes.values())
        if FAILURE in values:
            assert values == {FAILURE}
        if UNDO in values:
            assert values == {UNDO}
        assert set(driver.outcomes) == set(threads)
