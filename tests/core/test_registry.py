"""Tests for the shared plugin-registry base and param validation."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.registry import (
    ParamError,
    ParamSpec,
    ParamValidationError,
    Registry,
    format_params,
    params_from_callable,
    params_from_dataclass,
    validate_params,
)


# ----------------------------------------------------------------------
# Parameter derivation
# ----------------------------------------------------------------------
def runner(n_threads: int, rate: float = 1.0, label: str = "x",
           flag: bool = False):
    return {}


def forwarding_runner(seed: int, **options):
    return {}


class TestParamsFromCallable:
    def test_required_and_defaults(self):
        params, accepts_extra = params_from_callable(runner)
        assert not accepts_extra
        by_name = {spec.name: spec for spec in params}
        assert by_name["n_threads"].required
        assert not by_name["rate"].required
        assert by_name["rate"].default == 1.0
        assert by_name["label"].default == "x"

    def test_simple_types_resolved(self):
        params, _ = params_from_callable(runner)
        by_name = {spec.name: spec for spec in params}
        assert by_name["n_threads"].types == (int,)
        assert by_name["rate"].types == (int, float)   # int widens to float
        assert by_name["label"].types == (str,)
        assert by_name["flag"].types == (bool,)

    def test_var_keyword_sets_accepts_extra(self):
        params, accepts_extra = params_from_callable(forwarding_runner)
        assert accepts_extra
        assert [spec.name for spec in params] == ["seed"]

    def test_optional_annotation(self):
        def f(limit: Optional[int] = None):
            return {}
        params, _ = params_from_callable(f)
        assert set(params[0].types) == {int, type(None)}

    def test_rich_annotation_degrades_to_unchecked(self):
        def f(points: dict):
            return {}
        params, _ = params_from_callable(f)
        assert params[0].types is None

    def test_unintrospectable_callable_degrades(self):
        params, accepts_extra = params_from_callable(dict.fromkeys)
        # Either a real signature or the unchecked fallback — never a crash.
        assert isinstance(params, tuple)
        assert isinstance(accepts_extra, bool)


@dataclass(frozen=True)
class DemoSpec:
    name: str
    width: int = 2
    mean: float = 1.0


class TestParamsFromDataclass:
    def test_fields_become_params(self):
        params = params_from_dataclass(DemoSpec)
        assert [spec.name for spec in params] == ["name", "width", "mean"]

    def test_skip_excludes_fields(self):
        params = params_from_dataclass(DemoSpec, skip=("name",))
        assert [spec.name for spec in params] == ["width", "mean"]
        assert all(not spec.required for spec in params)
        assert params[0].default == 2


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidateParams:
    def setup_method(self):
        self.params, self.extra = params_from_callable(runner)

    def check(self, given, **kwargs):
        return validate_params("scenario 'demo'", self.params, self.extra,
                               given, **kwargs)

    def test_valid_point_passes(self):
        assert self.check({"n_threads": 3, "rate": 2.5}) == []

    def test_int_accepted_for_float(self):
        assert self.check({"n_threads": 3, "rate": 2}) == []

    def test_unknown_key_names_owner_and_key(self):
        errors = self.check({"n_threads": 3, "n_thread": 4})
        assert len(errors) == 1
        error = errors[0]
        assert error.kind == "unknown"
        assert error.key == "n_thread"
        assert "scenario 'demo'" in str(error)
        assert "'n_thread'" in str(error)
        assert "declared" in str(error)

    def test_missing_required_named(self):
        errors = self.check({"rate": 2.0})
        assert [e.kind for e in errors] == ["missing"]
        assert errors[0].key == "n_threads"
        assert "missing required parameter 'n_threads'" in str(errors[0])

    def test_missing_skipped_for_partial_contract(self):
        assert self.check({"rate": 2.0}, require=False) == []

    def test_wrong_type_named(self):
        errors = self.check({"n_threads": "three"})
        assert [e.kind for e in errors] == ["type"]
        assert errors[0].key == "n_threads"
        assert "expects int" in str(errors[0])
        assert "str" in str(errors[0])

    def test_bool_not_accepted_as_int(self):
        errors = self.check({"n_threads": True})
        assert [e.kind for e in errors] == ["type"]

    def test_accepts_extra_lets_unknown_keys_through(self):
        params, extra = params_from_callable(forwarding_runner)
        assert validate_params("scenario 'fwd'", params, extra,
                               {"seed": 1, "anything": object()}) == []
        # ...but still type-checks the declared ones.
        errors = validate_params("scenario 'fwd'", params, extra,
                                 {"seed": "nope"})
        assert [e.kind for e in errors] == ["type"]

    def test_validation_error_carries_records(self):
        errors = self.check({"bogus": 1})
        with pytest.raises(ParamValidationError) as excinfo:
            raise ParamValidationError(errors)
        assert excinfo.value.errors == tuple(errors)
        assert "bogus" in str(excinfo.value)


def test_format_params_rendering():
    params, extra = params_from_callable(forwarding_runner)
    assert format_params(params, extra) == "seed: int (required), **options"
    assert format_params((), False) == "(none)"
    spec = ParamSpec(name="rate", annotation="float", default=1.0)
    assert spec.describe() == "rate: float = 1.0"


# ----------------------------------------------------------------------
# Registry base
# ----------------------------------------------------------------------
class DemoRegistry(Registry[DemoSpec]):
    kind = "demo"


class TestRegistryBase:
    def test_add_and_get(self):
        registry = DemoRegistry()
        spec = registry.add(DemoSpec("a"))
        assert registry.get("a") is spec
        assert "a" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = DemoRegistry()
        registry.add(DemoSpec("a"))
        with pytest.raises(ValueError, match="demo 'a' already registered"):
            registry.add(DemoSpec("a"))

    def test_unknown_lookup_lists_registered(self):
        registry = DemoRegistry()
        registry.add(DemoSpec("a"))
        registry.add(DemoSpec("b"))
        with pytest.raises(KeyError) as excinfo:
            registry.get("c")
        assert "unknown demo 'c'" in str(excinfo.value)
        assert "'a'" in str(excinfo.value) and "'b'" in str(excinfo.value)

    def test_names_sorted_iteration_in_insertion_order(self):
        registry = DemoRegistry()
        registry.add(DemoSpec("b"))
        registry.add(DemoSpec("a"))
        assert registry.names() == ["a", "b"]
        assert [spec.name for spec in registry] == ["b", "a"]
