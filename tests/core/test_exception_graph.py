"""Tests for exception graphs: construction, resolution, generation, pruning."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import exception_graph_level_size
from repro.core import (
    ActionContext,
    ExceptionGraph,
    ExceptionGraphError,
    UNIVERSAL,
    generate_full_graph,
    graph_statistics,
    internal,
    prune_impossible_combinations,
)

E1, E2, E3, E4 = (internal(f"e{i}") for i in range(1, 5))


def small_graph():
    """The paper's Figure 3 style graph over three primitives."""
    return generate_full_graph([E1, E2, E3], action_name="fig3")


class TestConstruction:
    def test_universal_exception_always_present(self):
        graph = ExceptionGraph("g")
        assert UNIVERSAL in graph
        assert len(graph) == 1

    def test_add_exception_defaults_under_universal(self):
        graph = ExceptionGraph("g")
        graph.add_exception(E1)
        assert graph.parents(E1) == {UNIVERSAL}
        assert E1 in graph.children(UNIVERSAL)

    def test_add_cover_creates_edge(self):
        graph = ExceptionGraph("g")
        resolving = internal("both")
        graph.declare_hierarchy(resolving, [E1, E2])
        assert graph.children(resolving) == {E1, E2}
        assert graph.covers(resolving, E1)

    def test_implicit_universal_edge_removed_when_real_parent_added(self):
        graph = ExceptionGraph("g")
        graph.add_exception(E1)
        resolving = internal("r")
        graph.declare_hierarchy(resolving, [E1])
        assert UNIVERSAL not in graph.parents(E1)

    def test_self_cover_rejected(self):
        graph = ExceptionGraph("g")
        graph.add_exception(E1)
        with pytest.raises(ExceptionGraphError):
            graph.add_cover(E1, E1)

    def test_cycle_rejected(self):
        graph = ExceptionGraph("g")
        a, b = internal("a"), internal("b")
        graph.add_cover(a, b)
        with pytest.raises(ExceptionGraphError):
            graph.add_cover(b, a)

    def test_validate_accepts_well_formed_graph(self):
        small_graph().validate()

    def test_degrees_and_node_kinds(self):
        graph = small_graph()
        assert graph.out_degree(E1) == 0                   # primitive
        assert graph.in_degree(UNIVERSAL) == 0             # root
        assert set(graph.primitives()) == {E1, E2, E3}
        assert all(graph.in_degree(r) > 0 and graph.out_degree(r) > 0
                   for r in graph.resolving_exceptions())

    def test_levels_match_figure3(self):
        graph = small_graph()
        assert graph.level(E1) == 0
        pair = next(node for node in graph.exceptions
                    if node.name == "e1&e2")
        triple = next(node for node in graph.exceptions
                      if node.name == "e1&e2&e3")
        assert graph.level(pair) == 1
        assert graph.level(triple) == 2
        assert graph.level(graph.universal) == 3


class TestResolution:
    def test_single_exception_resolves_to_itself(self):
        assert small_graph().resolve([E1]) == E1

    def test_pair_resolves_to_covering_node(self):
        assert small_graph().resolve([E1, E2]).name == "e1&e2"

    def test_all_three_resolve_to_top_combination(self):
        assert small_graph().resolve([E1, E2, E3]).name == "e1&e2&e3"

    def test_unknown_exception_resolves_to_universal(self):
        graph = small_graph()
        assert graph.resolve([E1, internal("unknown")]) == graph.universal

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            small_graph().resolve([])

    def test_resolution_is_deterministic(self):
        graph = small_graph()
        results = {graph.resolve([E2, E3]) for _ in range(10)}
        assert len(results) == 1

    def test_resolution_order_independent(self):
        graph = small_graph()
        for permutation in itertools.permutations([E1, E2, E3]):
            assert graph.resolve(permutation).name == "e1&e2&e3"

    def test_duplicates_ignored(self):
        assert small_graph().resolve([E1, E1, E1]) == E1

    def test_truncated_graph_falls_back_to_universal(self):
        graph = generate_full_graph([E1, E2, E3], max_level=1)
        assert graph.resolve([E1, E2]).name == "e1&e2"
        assert graph.resolve([E1, E2, E3]) == graph.universal

    def test_resolving_node_in_raised_set(self):
        graph = small_graph()
        pair = next(n for n in graph.exceptions if n.name == "e1&e2")
        assert graph.resolve([pair, E1]) == pair
        assert graph.resolve([pair, E3]).name == "e1&e2&e3"


class TestGeneration:
    def test_node_count_matches_closed_form(self):
        # n primitives -> sum over k of C(n, k) combinations plus universal.
        primitives = [internal(f"p{i}") for i in range(4)]
        graph = generate_full_graph(primitives)
        expected = sum(exception_graph_level_size(4, level)
                       for level in range(4)) + 1
        assert len(graph) == expected

    def test_level_sizes_match_paper_formulas(self):
        primitives = [internal(f"p{i}") for i in range(5)]
        graph = generate_full_graph(primitives)
        by_level = {}
        for node in graph.exceptions:
            if node == graph.universal:
                continue
            by_level.setdefault(graph.level(node), 0)
            by_level[graph.level(node)] += 1
        assert by_level[1] == 5 * 4 // 2                  # n(n-1)/2
        assert by_level[2] == 5 * 4 * 3 // 6              # n(n-1)(n-2)/6
        assert by_level[4] == 1                           # single top node

    def test_duplicate_primitives_rejected(self):
        with pytest.raises(ValueError):
            generate_full_graph([E1, E1])

    def test_empty_primitives_rejected(self):
        with pytest.raises(ValueError):
            generate_full_graph([])

    def test_statistics_summary(self):
        stats = graph_statistics(small_graph())
        assert stats["primitives"] == 3
        assert stats["nodes"] == 8
        assert stats["max_level"] == 3


class TestPruning:
    def test_impossible_combination_removed(self):
        graph = small_graph()
        pruned = prune_impossible_combinations(graph, [frozenset({E1, E2})])
        names = {node.name for node in pruned.exceptions}
        assert "e1&e2" not in names
        # The larger combination covering e1&e2 is also impossible.
        assert "e1&e2&e3" not in names

    def test_pruned_graph_still_resolves_via_universal(self):
        graph = small_graph()
        pruned = prune_impossible_combinations(graph, [frozenset({E1, E2})])
        assert pruned.resolve([E1, E2]) == pruned.universal
        assert pruned.resolve([E1, E3]).name == "e1&e3"

    def test_pruning_preserves_validity(self):
        graph = generate_full_graph([E1, E2, E3, E4])
        pruned = prune_impossible_combinations(
            graph, [frozenset({E1, E2}), frozenset({E3, E4})])
        pruned.validate()


# ----------------------------------------------------------------------
# The compiled resolution index
# ----------------------------------------------------------------------
class TestCompiledIndex:
    def test_index_is_cached(self):
        graph = small_graph()
        assert graph.compiled() is graph.compiled()

    def test_index_shared_across_action_contexts(self):
        # All participants of an action hold contexts over the same graph
        # object, so they share one compiled index build.
        graph = small_graph()
        context_a = ActionContext("A", ("T1", "T2"), graph)
        context_b = ActionContext("A", ("T1", "T2"), graph)
        assert context_a.compiled_graph is context_b.compiled_graph
        assert context_a.resolve([E1, E2]).name == "e1&e2"

    def test_add_exception_invalidates_index(self):
        graph = ExceptionGraph("g")
        graph.add_exception(E1)
        before = graph.compiled()
        graph.add_exception(E4)
        after = graph.compiled()
        assert after is not before
        assert E4 in after.positions

    def test_add_cover_invalidates_index(self):
        graph = ExceptionGraph("g")
        graph.add_exception(E1)
        graph.add_exception(E2)
        before = graph.compiled()
        version_before = graph.version
        # Without a common cover the pair resolves to the universal node.
        assert graph.resolve([E1, E2]) == graph.universal
        resolving = internal("both")
        graph.declare_hierarchy(resolving, [E1, E2])
        assert graph.version > version_before
        assert graph.compiled() is not before
        # The new cover is picked up immediately: no stale index answers.
        assert graph.resolve([E1, E2]) == resolving

    def test_levels_and_descendant_counts_match_naive(self):
        graph = generate_full_graph([E1, E2, E3, E4])
        for node in graph.exceptions:
            assert graph.level(node) == graph.level_naive(node)
            assert graph.descendant_count(node) == len(graph.descendants(node))

    def test_primitive_cover_sets(self):
        graph = small_graph()
        index = graph.compiled()
        pair = next(n for n in graph.exceptions if n.name == "e1&e2")
        assert index.primitive_cover(pair) == frozenset({E1, E2})
        assert index.primitive_cover(E1) == frozenset({E1})
        assert index.primitive_cover(graph.universal) == frozenset({E1, E2, E3})

    def test_unknown_node_raises_keyerror(self):
        graph = small_graph()
        with pytest.raises(KeyError):
            graph.level(internal("stranger"))
        with pytest.raises(KeyError):
            graph.descendant_count(internal("stranger"))

    def test_statistics_and_resolution_fast_on_wide_graph(self):
        # Acceptance bar: 12 primitives (max_level=3, 794 nodes) must
        # complete graph_statistics plus a 100-call resolve loop in < 1s.
        import random
        import time

        primitives = [internal(f"w{i:02d}") for i in range(12)]
        graph = generate_full_graph(primitives, max_level=3)
        rng = random.Random(7)
        start = time.perf_counter()
        stats = graph_statistics(graph)
        for _ in range(100):
            graph.resolve(rng.sample(primitives, rng.randint(1, 6)))
        elapsed = time.perf_counter() - start
        assert stats["primitives"] == 12
        assert elapsed < 1.0

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_compiled_matches_naive_on_random_dags(self, data):
        # Randomized DAGs: edges only from lower to higher index, so the
        # construction never cycles; resolution through the compiled index
        # must pick the identical exception to the naive scan.
        n = data.draw(st.integers(min_value=2, max_value=10))
        nodes = [internal(f"n{i}") for i in range(n)]
        graph = ExceptionGraph("random")
        for node in nodes:
            graph.add_exception(node)
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
            .filter(lambda pair: pair[0] < pair[1]),
            max_size=3 * n))
        for parent_index, child_index in edges:
            graph.add_cover(nodes[parent_index], nodes[child_index])
        raised = data.draw(st.lists(st.sampled_from(nodes), min_size=1,
                                    max_size=n))
        assert graph.resolve(raised) == graph.resolve_naive(raised)
        for node in graph.exceptions:
            assert graph.level(node) == graph.level_naive(node)

# ----------------------------------------------------------------------
# Property-based tests on the resolution invariants
# ----------------------------------------------------------------------
primitive_lists = st.lists(
    st.integers(min_value=0, max_value=6), min_size=1, max_size=6,
    unique=True).map(lambda ids: [internal(f"p{i}") for i in ids])


class TestResolutionProperties:
    @given(primitives=primitive_lists, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_resolution_covers_every_raised_exception(self, primitives,
                                                               data):
        graph = generate_full_graph(primitives)
        raised = data.draw(st.lists(st.sampled_from(primitives), min_size=1,
                                    max_size=len(primitives)))
        resolved = graph.resolve(raised)
        for exception in raised:
            assert graph.covers(resolved, exception)

    @given(primitives=primitive_lists, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_resolution_is_minimal(self, primitives, data):
        graph = generate_full_graph(primitives)
        raised = set(data.draw(st.lists(st.sampled_from(primitives),
                                        min_size=1, max_size=len(primitives))))
        resolved = graph.resolve(raised)
        covered = graph.descendants(resolved) | {resolved}
        # No other node covering the whole raised set covers fewer exceptions.
        for candidate in graph.exceptions:
            candidate_covered = graph.descendants(candidate) | {candidate}
            if raised <= candidate_covered:
                assert len(covered) <= len(candidate_covered)

    @given(primitives=primitive_lists)
    @settings(max_examples=60, deadline=None)
    def test_property_generated_graphs_are_valid_dags(self, primitives):
        graph = generate_full_graph(primitives)
        graph.validate()
        assert set(graph.primitives()) == set(primitives)

    @given(primitives=primitive_lists, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_compiled_matches_naive_on_generated_graphs(
            self, primitives, data):
        max_level = data.draw(st.one_of(
            st.none(), st.integers(1, max(1, len(primitives) - 1))))
        graph = generate_full_graph(primitives, max_level=max_level)
        pool = graph.exceptions
        raised = data.draw(st.lists(st.sampled_from(pool), min_size=1,
                                    max_size=min(5, len(pool))))
        assert graph.resolve(raised) == graph.resolve_naive(raised)

    @given(primitives=primitive_lists, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_resolution_idempotent(self, primitives, data):
        graph = generate_full_graph(primitives)
        raised = data.draw(st.lists(st.sampled_from(primitives), min_size=1,
                                    max_size=len(primitives)))
        once = graph.resolve(raised)
        assert graph.resolve([once]) == once
        assert graph.resolve(list(raised) + [once]) == once
