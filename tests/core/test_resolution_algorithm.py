"""Tests of the coordinated exception handling and resolution algorithm.

These tests drive the pure :class:`ResolutionCoordinator` state machines
directly (no kernel, no network) through the ``ProtocolDriver`` helper,
checking the behaviours the paper specifies in Section 3.3: states, message
counts, resolver selection, nested-action abortion, retained messages, and
the correctness properties behind Lemmas 2–3.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import messages_all_exceptions, messages_single_exception
from repro.core import (
    ActionContext,
    CommitMessage,
    ExceptionGraph,
    ExceptionMessage,
    ProtocolError,
    ResolutionCoordinator,
    SuspendedMessage,
    ThreadState,
    internal,
)
from repro.core.effects import AbortNested, HandleResolved, InterruptRole, SendTo
from repro.core.exception_graph import generate_full_graph

from tests.conftest import ProtocolDriver

E1, E2, E3 = internal("e1"), internal("e2"), internal("e3")


def make_driver(threads=("T1", "T2", "T3"), primitives=(E1, E2, E3),
                action="A"):
    graph = generate_full_graph(list(primitives), action_name=action)
    driver = ProtocolDriver({t: ResolutionCoordinator(t) for t in threads})
    driver.enter_all(lambda: ActionContext(action, tuple(threads), graph))
    return driver


class TestSingleException:
    def test_all_threads_handle_the_raised_exception(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.deliver_all()
        assert driver.handled == {"T1": E1, "T2": E1, "T3": E1}

    def test_message_count_matches_paper(self):
        driver = make_driver()
        driver.raise_in("T2", E2)
        driver.deliver_all()
        assert driver.message_count == messages_single_exception(3)

    def test_states_after_handling(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.deliver_all()
        assert driver.coordinators["T1"].state is ThreadState.EXCEPTIONAL
        assert driver.coordinators["T2"].state is ThreadState.SUSPENDED
        assert driver.coordinators["T3"].state is ThreadState.SUSPENDED

    def test_raiser_records_itself_in_le(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        raiser = driver.coordinators["T1"]
        # Before the peers answer, the raiser's own exception sits in LE.
        assert raiser.le.exceptional_threads("A") == {"T1"}
        assert raiser.le.exceptions_for("A") == [E1]
        driver.deliver_all()
        # After resolution LE is emptied; the handling map remembers E.
        assert raiser.handling["A"] == E1
        assert len(raiser.le) == 0

    def test_only_one_resolution_call_in_total(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.deliver_all()
        total = sum(c.resolution_calls for c in driver.coordinators.values())
        assert total == 1

    def test_raise_outside_action_rejected(self):
        coordinator = ResolutionCoordinator("T1")
        with pytest.raises(ProtocolError):
            coordinator.raise_exception(E1)

    def test_two_thread_action(self):
        driver = make_driver(threads=("T1", "T2"), primitives=(E1,))
        driver.raise_in("T1", E1)
        driver.deliver_all()
        assert driver.handled == {"T1": E1, "T2": E1}
        assert driver.message_count == messages_single_exception(2)


class TestConcurrentExceptions:
    def test_concurrent_exceptions_resolve_to_cover(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.raise_in("T2", E2)
        driver.deliver_all()
        assert set(driver.handled) == {"T1", "T2", "T3"}
        assert all(e.name == "e1&e2" for e in driver.handled.values())

    def test_all_raise_all_handle_same_cover(self):
        driver = make_driver()
        for thread, exception in zip(("T1", "T2", "T3"), (E1, E2, E3)):
            driver.raise_in(thread, exception)
        driver.deliver_all()
        assert all(e.name == "e1&e2&e3" for e in driver.handled.values())

    def test_message_count_independent_of_exception_count(self):
        counts = []
        for raisers in (1, 2, 3):
            driver = make_driver()
            for index in range(raisers):
                driver.raise_in(f"T{index + 1}", [E1, E2, E3][index])
            driver.deliver_all()
            counts.append(driver.message_count)
        assert counts[0] == counts[1] == counts[2] == messages_all_exceptions(3)

    def test_resolver_is_largest_exceptional_thread(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.raise_in("T2", E2)
        driver.deliver_all()
        commits = [effect for _sender, effect in driver.effects_log
                   if isinstance(effect, SendTo)
                   and isinstance(effect.message, CommitMessage)]
        assert len(commits) == 1
        assert commits[0].message.resolver == "T2"

    def test_suspended_thread_never_resolves(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.deliver_all()
        assert driver.coordinators["T3"].resolution_calls == 0
        assert driver.coordinators["T2"].resolution_calls == 0

    def test_same_exception_raised_by_two_threads(self):
        driver = make_driver()
        driver.raise_in("T1", E1)
        driver.raise_in("T3", E1)
        driver.deliver_all()
        assert all(e == E1 for e in driver.handled.values())

    @given(raisers=st.sets(st.sampled_from(["T1", "T2", "T3"]), min_size=1),
           seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_everyone_handles_a_common_cover(self, raisers, seed):
        driver = make_driver()
        mapping = {"T1": E1, "T2": E2, "T3": E3}
        for thread in sorted(raisers):
            driver.raise_in(thread, mapping[thread])
        driver.deliver_all()
        assert set(driver.handled) == {"T1", "T2", "T3"}
        handled = set(driver.handled.values())
        assert len(handled) == 1, "all threads must handle the same exception"
        graph = driver.coordinators["T1"].sa.find("A") or \
            driver.coordinators["T1"].active_context()
        resolved = handled.pop()
        for thread in raisers:
            context = driver.coordinators[thread].handling
            assert context["A"] == resolved


class TestRetainedMessages:
    def test_message_for_unentered_action_is_retained(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T2")
        effects = coordinator.receive(ExceptionMessage("A", "T1", E1))
        assert coordinator.retained
        assert not any(isinstance(e, SendTo) for e in effects)

    def test_retained_message_processed_on_entry(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T2")
        coordinator.receive(ExceptionMessage("A", "T1", E1))
        effects = coordinator.enter_action(
            ActionContext("A", ("T1", "T2"), graph))
        assert coordinator.state is ThreadState.SUSPENDED
        assert any(isinstance(e, SendTo)
                   and isinstance(e.message, SuspendedMessage)
                   for e in effects)

    def test_commit_for_other_action_ignored(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T2")
        coordinator.enter_action(ActionContext("A", ("T1", "T2"), graph))
        effects = coordinator.receive(CommitMessage("B", "T1", E1))
        assert not any(isinstance(e, HandleResolved) for e in effects)


class TestNestedAbortion:
    def build_nested(self):
        """T1 only in Outer; T2, T3 in Outer and Inner."""
        outer_graph = generate_full_graph([E1, E2], action_name="Outer")
        inner_graph = ExceptionGraph("Inner")
        coordinators = {t: ResolutionCoordinator(t) for t in ("T1", "T2", "T3")}
        driver = ProtocolDriver(coordinators)
        outer = lambda: ActionContext("Outer", ("T1", "T2", "T3"), outer_graph)
        inner = lambda: ActionContext("Inner", ("T2", "T3"), inner_graph,
                                      parent="Outer")
        for thread in ("T1", "T2", "T3"):
            driver.execute(thread, coordinators[thread].enter_action(outer()))
        for thread in ("T2", "T3"):
            driver.execute(thread, coordinators[thread].enter_action(inner()))
        return driver

    def test_enclosing_exception_triggers_abort_effect(self):
        driver = self.build_nested()
        driver.raise_in("T1", E1)
        # Deliver only the Exception messages to T2/T3.
        aborts = []
        while driver.inflight:
            recipient, message = driver.inflight.pop(0)
            effects = driver.coordinators[recipient].receive(message)
            aborts.extend(e for e in effects if isinstance(e, AbortNested))
            driver.execute(recipient, [e for e in effects
                                       if not isinstance(e, AbortNested)])
        assert len(aborts) == 2
        assert all(effect.actions == ("Inner",) for effect in aborts)
        assert all(effect.resume_action == "Outer" for effect in aborts)

    def test_abortion_completed_with_exception_broadcasts_it(self):
        driver = self.build_nested()
        driver.raise_in("T1", E1)
        driver.deliver_all()          # T2, T3 record the abort request
        for thread in ("T2", "T3"):
            effects = driver.coordinators[thread].abortion_completed("Outer", E2)
            driver.execute(thread, effects)
        driver.deliver_all()
        assert set(driver.handled) == {"T1", "T2", "T3"}
        assert all(e.name == "e1&e2" for e in driver.handled.values())

    def test_abortion_completed_without_exception_suspends(self):
        driver = self.build_nested()
        driver.raise_in("T1", E1)
        driver.deliver_all()
        for thread in ("T2", "T3"):
            driver.execute(thread, driver.coordinators[thread]
                           .abortion_completed("Outer", None))
        driver.deliver_all()
        assert all(e == E1 for e in driver.handled.values())
        assert driver.coordinators["T2"].state is ThreadState.SUSPENDED

    def test_abortion_pops_nested_context(self):
        driver = self.build_nested()
        driver.raise_in("T1", E1)
        driver.deliver_all()
        driver.coordinators["T2"].abortion_completed("Outer", None)
        assert driver.coordinators["T2"].active_action_name() == "Outer"

    def test_abortion_completed_without_pending_abort_rejected(self):
        driver = self.build_nested()
        with pytest.raises(ProtocolError):
            driver.coordinators["T2"].abortion_completed("Outer", None)

    def test_exception_in_nested_action_stays_nested(self):
        driver = self.build_nested()
        driver.raise_in("T2", E1)          # raised within Inner
        driver.deliver_all()
        # T1 is not an Inner participant, so it never handles anything.
        assert "T1" not in driver.handled
        assert set(driver.handled) == {"T2", "T3"}


class TestDelayedCommit:
    """The lost-Commit abortion race (the latency-window bug).

    A ``Commit`` that reaches a thread while it is still aborting nested
    actions toward the commit's action used to be discarded; the resolver
    commits exactly once, so the thread stayed suspended forever.  The
    coordinator now retains such a Commit (like Exception/Suspended
    messages) and replays it from ``abortion_completed``.
    """

    def build_aborting_t2(self):
        """T2 with stack [Outer, Inner], aborting Inner toward Outer."""
        outer_graph = generate_full_graph([E1, E2], action_name="Outer")
        inner_graph = generate_full_graph([E3], action_name="Inner")
        coordinator = ResolutionCoordinator("T2")
        coordinator.enter_action(
            ActionContext("Outer", ("T1", "T2", "T3"), outer_graph))
        coordinator.enter_action(
            ActionContext("Inner", ("T2", "T3"), inner_graph, parent="Outer"))
        effects = coordinator.receive(ExceptionMessage("Outer", "T1", E1))
        assert any(isinstance(e, AbortNested) for e in effects)
        assert coordinator.pending_abort_target == "Outer"
        return coordinator

    def test_commit_during_abortion_is_retained_not_dropped(self):
        coordinator = self.build_aborting_t2()
        commit = CommitMessage("Outer", "T3", E1)
        effects = coordinator.receive(commit)
        assert commit in coordinator.retained
        assert "Outer" not in coordinator.handling
        assert not any(isinstance(e, HandleResolved) for e in effects)

    def test_retained_commit_replayed_from_abortion_completed(self):
        coordinator = self.build_aborting_t2()
        commit = CommitMessage("Outer", "T3", E1)
        coordinator.receive(commit)
        effects = coordinator.abortion_completed("Outer", None)
        handled = [e for e in effects if isinstance(e, HandleResolved)]
        assert handled and handled[0].exception == E1
        assert coordinator.handling["Outer"] == E1
        assert not coordinator.retained

    def test_without_commit_abortion_leaves_thread_suspended(self):
        # The deadlock shape the fix prevents: no Commit ever arrives again,
        # so after the abortion the thread is suspended with nothing to do.
        coordinator = self.build_aborting_t2()
        effects = coordinator.abortion_completed("Outer", None)
        assert coordinator.state is ThreadState.SUSPENDED
        assert not any(isinstance(e, HandleResolved) for e in effects)

    def test_commit_for_aborting_active_action_does_not_wipe_le(self):
        # Variant of the race: the Commit is for the *nested* action that is
        # itself being aborted.  It is stale (the instance is dying) and must
        # not clear LEi, which holds the enclosing action's record.
        outer_graph = generate_full_graph([E1, E2], action_name="Outer")
        inner_graph = generate_full_graph([E3], action_name="Inner")
        coordinator = ResolutionCoordinator("T2")
        coordinator.enter_action(
            ActionContext("Outer", ("T1", "T2", "T3"), outer_graph))
        coordinator.enter_action(
            ActionContext("Inner", ("T2", "T3"), inner_graph, parent="Outer"))
        coordinator.receive(ExceptionMessage("Inner", "T3", E3))
        coordinator.receive(ExceptionMessage("Outer", "T1", E1))
        assert coordinator.pending_abort_target == "Outer"
        effects = coordinator.receive(CommitMessage("Inner", "T3", E3))
        assert "Inner" not in coordinator.handling
        assert not any(isinstance(e, HandleResolved) for e in effects)
        records = coordinator.le.records_for("Outer")
        assert [r.exception for r in records] == [E1]

    def test_retained_commit_dropped_when_action_left(self):
        # A Commit retained for an action must not leak into a later
        # instance of the same action name once the instance has ended.
        coordinator = self.build_aborting_t2()
        coordinator.receive(CommitMessage("Outer", "T3", E1))
        coordinator.abortion_completed("Outer", None)
        assert not coordinator.retained
        coordinator.receive(CommitMessage("Outer", "T3", E2))  # handled now
        coordinator.leave_action("Outer", success=True)
        assert not coordinator.retained


class TestResolverElectionNaturalOrder:
    def test_resolver_is_numeric_max_at_n_ge_10(self):
        # With ids T1..T12 the "largest identifier" is T12; lexicographic
        # ordering would elect T9 and the real T12 would also consider
        # itself resolver on some interleavings (split-brain commits).
        threads = tuple(f"T{i}" for i in range(1, 13))
        driver = make_driver(threads=threads)
        driver.raise_in("T9", E1)
        driver.raise_in("T12", E2)
        driver.deliver_all()
        commits = [effect for _sender, effect in driver.effects_log
                   if isinstance(effect, SendTo)
                   and isinstance(effect.message, CommitMessage)]
        assert len(commits) == 1
        assert commits[0].message.resolver == "T12"
        assert set(driver.handled) == set(threads)
        assert all(e.name == "e1&e2" for e in driver.handled.values())

    def test_single_raiser_at_large_n(self):
        threads = tuple(f"T{i}" for i in range(1, 17))
        driver = make_driver(threads=threads)
        driver.raise_in("T16", E1)
        driver.deliver_all()
        assert driver.coordinators["T16"].resolution_calls == 1
        assert all(e == E1 for e in driver.handled.values())


class TestLifecycle:
    def test_leave_action_resets_state(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T1")
        coordinator.enter_action(ActionContext("A", ("T1",), graph))
        coordinator.raise_exception(E1)
        coordinator.leave_action("A", success=False)
        assert coordinator.state is ThreadState.EXCEPTIONAL
        assert coordinator.active_action_name() is None
        assert "A" not in coordinator.handling

    def test_leave_wrong_action_rejected(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T1")
        coordinator.enter_action(ActionContext("A", ("T1",), graph))
        with pytest.raises(ProtocolError):
            coordinator.leave_action("B")

    def test_enter_requires_membership(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T9")
        with pytest.raises(ProtocolError):
            coordinator.enter_action(ActionContext("A", ("T1", "T2"), graph))

    def test_single_participant_resolves_immediately(self):
        graph = generate_full_graph([E1])
        coordinator = ResolutionCoordinator("T1")
        coordinator.enter_action(ActionContext("A", ("T1",), graph))
        effects = coordinator.raise_exception(E1)
        assert any(isinstance(e, HandleResolved) and e.exception == E1
                   for e in effects)

    def test_repeated_instances_of_same_action(self):
        graph = generate_full_graph([E1])
        threads = ("T1", "T2")
        driver = ProtocolDriver({t: ResolutionCoordinator(t) for t in threads})
        for round_number in range(3):
            driver.handled.clear()
            driver.enter_all(lambda: ActionContext("A", threads, graph))
            driver.raise_in("T1", E1)
            driver.deliver_all()
            assert driver.handled == {"T1": E1, "T2": E1}
            for thread in threads:
                driver.coordinators[thread].leave_action("A", success=True)
