"""Tests of the Campbell–Randell and Romanovsky-96 baseline coordinators."""

import pytest

from repro.core import ActionContext, ThreadState, internal
from repro.core.baselines import (
    CampbellRandellCoordinator,
    PROTOCOL_MESSAGE_TYPES,
    Romanovsky96Coordinator,
)
from repro.core.exception_graph import generate_full_graph

from tests.conftest import ProtocolDriver

E1, E2, E3 = internal("e1"), internal("e2"), internal("e3")


def make_driver(coordinator_class, threads=("T1", "T2", "T3")):
    graph = generate_full_graph([E1, E2, E3], action_name="A")
    driver = ProtocolDriver({t: coordinator_class(t) for t in threads})
    driver.enter_all(lambda: ActionContext("A", tuple(threads), graph))
    return driver


@pytest.mark.parametrize("coordinator_class",
                         [CampbellRandellCoordinator, Romanovsky96Coordinator],
                         ids=["campbell-randell", "romanovsky96"])
class TestBaselineCorrectness:
    """Both baselines must reach the same *decisions* as the new algorithm."""

    def test_single_exception_handled_by_all(self, coordinator_class):
        driver = make_driver(coordinator_class)
        driver.raise_in("T1", E1)
        driver.deliver_all()
        assert driver.handled == {"T1": E1, "T2": E1, "T3": E1}

    def test_concurrent_exceptions_resolve_to_common_cover(self, coordinator_class):
        driver = make_driver(coordinator_class)
        driver.raise_in("T1", E1)
        driver.raise_in("T3", E3)
        driver.deliver_all()
        assert set(driver.handled) == {"T1", "T2", "T3"}
        assert all(e.name == "e1&e3" for e in driver.handled.values())

    def test_all_raise_all_handle(self, coordinator_class):
        driver = make_driver(coordinator_class)
        for thread, exc in zip(("T1", "T2", "T3"), (E1, E2, E3)):
            driver.raise_in(thread, exc)
        driver.deliver_all()
        assert all(e.name == "e1&e2&e3" for e in driver.handled.values())

    def test_states_are_consistent(self, coordinator_class):
        driver = make_driver(coordinator_class)
        driver.raise_in("T2", E2)
        driver.deliver_all()
        assert driver.coordinators["T2"].state is ThreadState.EXCEPTIONAL
        assert driver.coordinators["T1"].state is ThreadState.SUSPENDED

    def test_repeated_instances_do_not_leak_state(self, coordinator_class):
        graph = generate_full_graph([E1, E2, E3], action_name="A")
        threads = ("T1", "T2", "T3")
        driver = ProtocolDriver({t: coordinator_class(t) for t in threads})
        for _ in range(3):
            driver.handled.clear()
            driver.enter_all(lambda: ActionContext("A", threads, graph))
            driver.raise_in("T1", E1)
            driver.deliver_all()
            assert driver.handled == {"T1": E1, "T2": E1, "T3": E1}
            for thread in threads:
                driver.coordinators[thread].leave_action("A", success=True)


class TestBaselineCosts:
    """The baselines must exhibit the costs the paper attributes to them."""

    def test_cr_sends_more_messages_than_ours(self):
        from repro.core import ResolutionCoordinator
        results = {}
        for name, cls in (("ours", ResolutionCoordinator),
                          ("cr", CampbellRandellCoordinator),
                          ("r96", Romanovsky96Coordinator)):
            driver = make_driver(cls)
            for thread, exc in zip(("T1", "T2", "T3"), (E1, E2, E3)):
                driver.raise_in(thread, exc)
            driver.deliver_all()
            results[name] = driver.message_count
        assert results["cr"] > results["r96"] > results["ours"]

    def test_r96_message_count_matches_formula(self):
        driver = make_driver(Romanovsky96Coordinator)
        for thread, exc in zip(("T1", "T2", "T3"), (E1, E2, E3)):
            driver.raise_in(thread, exc)
        driver.deliver_all()
        assert driver.message_count == 3 * 3 * 2          # 3N(N-1), N=3

    def test_cr_resolution_called_on_every_thread_repeatedly(self):
        driver = make_driver(CampbellRandellCoordinator)
        for thread, exc in zip(("T1", "T2", "T3"), (E1, E2, E3)):
            driver.raise_in(thread, exc)
        driver.deliver_all()
        calls = {t: c.resolution_calls for t, c in driver.coordinators.items()}
        assert all(count >= 2 for count in calls.values())
        assert sum(calls.values()) > 3

    def test_r96_resolution_called_once_per_thread(self):
        driver = make_driver(Romanovsky96Coordinator)
        for thread, exc in zip(("T1", "T2", "T3"), (E1, E2, E3)):
            driver.raise_in(thread, exc)
        driver.deliver_all()
        assert all(c.resolution_calls == 1
                   for c in driver.coordinators.values())

    def test_ours_resolution_called_exactly_once_in_total(self):
        from repro.core import ResolutionCoordinator
        driver = make_driver(ResolutionCoordinator)
        for thread, exc in zip(("T1", "T2", "T3"), (E1, E2, E3)):
            driver.raise_in(thread, exc)
        driver.deliver_all()
        assert sum(c.resolution_calls
                   for c in driver.coordinators.values()) == 1

    def test_protocol_message_types_registry(self):
        assert "CommitMessage" in PROTOCOL_MESSAGE_TYPES["ours"]
        assert "CRConfirmMessage" in PROTOCOL_MESSAGE_TYPES["campbell-randell"]
        assert "AgreementMessage" in PROTOCOL_MESSAGE_TYPES["romanovsky96"]
