"""Golden-trace conformance: every case must match its committed fixture.

These tests are the gate in front of any kernel/runtime change: a refactor
or optimisation that perturbs observable behaviour — event ordering,
message counts, latency quantiles, oracle verdicts — moves a digest and
fails here.  Regenerate fixtures only when the behaviour change is
intended: ``PYTHONPATH=src python -m repro.conformance --regenerate``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import conformance

FIXTURE_ROOT = os.path.join(os.path.dirname(__file__), "fixtures")


def test_fixture_catalogue_is_complete():
    """Every catalogue case has a committed fixture and vice versa."""
    committed = {name[:-len(".json")]
                 for name in os.listdir(FIXTURE_ROOT)
                 if name.endswith(".json")}
    assert committed == set(conformance.case_names())


def test_default_fixture_root_resolves_here():
    assert os.path.samefile(conformance.default_fixture_root(), FIXTURE_ROOT)


def test_catalogue_covers_all_scenarios_and_algorithms():
    """The gated scenarios and three algorithms are all present."""
    names = set(conformance.case_names())
    for scenario in ("figure9", "large_n", "churn", "wide_graph",
                     "capacity", "mixed_traffic", "transactional",
                     "production_cell"):
        for slug in ("ours", "cr", "r96"):
            assert f"{scenario}_{slug}" in names
    assert "figure12" in names
    assert "explore_100" in names
    explore = conformance.CASES["explore_100"]
    (scenario, grid), = explore.runs
    assert scenario == "explore"
    assert sum(point["stop"] - point["start"] for point in grid) == 100


def test_every_registered_scenario_is_gated_or_exempt():
    """The coverage guard: no registered scenario may dodge conformance.

    A scenario registered through the plugin path must either appear in
    a conformance case (with a committed fixture, which the catalogue
    test above enforces) or carry an explicit exemption with a reason.
    """
    assert conformance.uncovered_scenarios() == []
    # Exemptions must name real scenarios, with a stated reason.
    from repro.bench.engine import REGISTRY
    for name, reason in conformance.COVERAGE_EXEMPT.items():
        assert name in REGISTRY, f"stale exemption {name!r}"
        assert reason.strip(), f"exemption {name!r} needs a reason"
    # And exemptions must not overlap actual coverage.
    assert not set(conformance.COVERAGE_EXEMPT) \
        & conformance.covered_scenarios()


def test_check_flags_ungated_scenarios(monkeypatch, tmp_path):
    """check() reports a registered-but-ungated scenario as a problem."""
    monkeypatch.setattr(
        conformance, "uncovered_scenarios", lambda: ["rogue"])
    name = "churn_ours"
    conformance.write_fixture(
        conformance.run_case(conformance.CASES[name]), str(tmp_path))
    problems = conformance.check([name], str(tmp_path))
    assert problems and "rogue" in problems[0]
    assert "no conformance case" in problems[0]


@pytest.mark.parametrize("name", conformance.case_names())
def test_case_matches_committed_fixture(name):
    """Re-run the case and compare its digest with the committed fixture."""
    fixture = conformance.load_fixture(name, FIXTURE_ROOT)
    assert fixture is not None, (
        f"fixture for {name} missing; regenerate with "
        f"python -m repro.conformance --regenerate")
    fresh = conformance.run_case(conformance.CASES[name])
    assert fresh["schema"] == fixture["schema"]
    assert fresh["digest"] == fixture["digest"], (
        f"conformance digest of {name} drifted; fresh summary: "
        f"{json.dumps(fresh['summary'], sort_keys=True)}; committed "
        f"summary: {json.dumps(fixture['summary'], sort_keys=True)}")
    # The summary is derived from the digested rows, so it must agree too.
    assert fresh["summary"] == fixture["summary"]


def test_volatile_keys_are_stripped():
    """wall-clock fields must never enter a canonical document."""
    rows = [{"total_time": 1.5, "wall_seconds": 0.123, "n": 2}]
    canonical = conformance.canonical_rows(rows)
    assert canonical == [{"total_time": 1.5, "n": 2}]


def test_digest_is_stable_for_equal_content():
    case = conformance.ConformanceCase("demo", ())
    rows = {"demo_scenario": [{"b": 2, "a": 1}]}
    reordered = {"demo_scenario": [{"a": 1, "b": 2}]}
    one = conformance.case_digest(conformance.canonical_document(case, rows))
    two = conformance.case_digest(
        conformance.canonical_document(case, reordered))
    assert one == two


def test_check_reports_missing_and_mismatched_fixtures(tmp_path):
    """check() pinpoints missing fixtures and digest drift."""
    name = "churn_ours"
    problems = conformance.check([name], str(tmp_path))
    assert problems and "fixture missing" in problems[0]

    fixture = conformance.run_case(conformance.CASES[name])
    conformance.write_fixture(fixture, str(tmp_path))
    assert conformance.check([name], str(tmp_path)) == []

    fixture["digest"] = "0" * 64
    conformance.write_fixture(fixture, str(tmp_path))
    problems = conformance.check([name], str(tmp_path))
    assert problems and "digest mismatch" in problems[0]
