"""Repository hygiene guard: compiled bytecode must never be tracked.

PR 3 removed 51 committed ``.pyc`` files and added ``.gitignore`` rules;
this test (and ``python -m repro.conformance --check``, which CI runs)
fails the build if any ``__pycache__`` directory or ``*.pyc`` file sneaks
back into the git index.
"""

from __future__ import annotations

import os

import pytest

from repro.conformance import tracked_bytecode

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_no_tracked_bytecode():
    tracked = tracked_bytecode(REPO_ROOT)
    if tracked is None:
        pytest.skip("git unavailable or not a checkout")
    assert tracked == [], (
        f"bytecode is tracked again (PR 3 removed 51 such files): {tracked}")


def test_gitignore_covers_bytecode():
    """The ignore rules that keep bytecode out must stay in place."""
    path = os.path.join(REPO_ROOT, ".gitignore")
    if not os.path.exists(path):
        pytest.skip("no .gitignore (not a checkout)")
    with open(path, "r", encoding="utf-8") as handle:
        rules = {line.strip() for line in handle if line.strip()}
    assert "__pycache__/" in rules
    assert any(rule in rules for rule in ("*.pyc", "*.py[cod]"))


def test_tracked_bytecode_detects_patterns(tmp_path):
    """On a synthetic repo the guard flags exactly the bytecode entries."""
    import subprocess
    try:
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True,
                       capture_output=True, timeout=60)
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable")
    (tmp_path / "module.py").write_text("x = 1\n")
    cache = tmp_path / "src" / "__pycache__"
    cache.mkdir(parents=True)
    (cache / "module.cpython-312.pyc").write_bytes(b"\x00")
    subprocess.run(["git", "-C", str(tmp_path), "add", "-f", "."],
                   check=True, capture_output=True, timeout=60)
    tracked = tracked_bytecode(str(tmp_path))
    assert tracked == ["src/__pycache__/module.cpython-312.pyc"]
