"""Integration tests: benchmark harness, reporting, cross-cutting behaviour."""

import pytest

from repro.analysis import (
    lemma1_completion_bound,
    messages_all_exceptions,
    TimingParameters,
)
from repro.bench import (
    build_experiment1,
    build_experiment2,
    lemma1_check,
    message_complexity_table,
    run_complexity_scenario,
    run_experiment1,
    run_experiment2,
    sweep_figure9,
    sweep_figure12_tmmax,
    sweep_figure12_tres,
)
from repro.bench.reporting import (
    format_table,
    linear_fit,
    paper_reference_figure12,
    paper_reference_figure9,
    series,
)
from repro.bench.scenarios import HANDLER_TIME, NORMAL_COMPUTATION_TIME
from repro.runtime import ActionStatus


# ----------------------------------------------------------------------
# Experiment 1 (Figures 9/10)
# ----------------------------------------------------------------------
class TestExperiment1:
    def test_every_iteration_recovers(self):
        result = run_experiment1(0.2, 0.1, 0.3, iterations=3)
        for reports in result.reports:
            assert all(r.status is ActionStatus.RECOVERED for r in reports)

    def test_each_iteration_aborts_the_nested_action(self):
        system = build_experiment1(0.2, 0.1, 0.3, iterations=4)
        system.run_to_completion()
        # Two nested participants abort once per iteration.
        assert system.metrics.abortions == 2 * 4
        assert system.metrics.resolutions == 4

    def test_resolving_exception_covers_both_faults(self):
        result = run_experiment1(0.2, 0.1, 0.3, iterations=1)
        resolved = {r.resolved.name for reports in result.reports
                    for r in reports}
        assert resolved == {"abort_residue&outer_fault"}

    def test_total_time_scales_with_iterations(self):
        one = run_experiment1(0.2, 0.1, 0.3, iterations=1).total_time
        five = run_experiment1(0.2, 0.1, 0.3, iterations=5).total_time
        assert five == pytest.approx(5 * one, rel=0.01)

    def test_monotone_in_each_parameter(self):
        base = run_experiment1(0.2, 0.1, 0.3, iterations=2).total_time
        assert run_experiment1(1.2, 0.1, 0.3, iterations=2).total_time > base
        assert run_experiment1(0.2, 1.1, 0.3, iterations=2).total_time > base
        assert run_experiment1(0.2, 0.1, 1.3, iterations=2).total_time > base

    def test_sweep_rows_have_expected_columns(self):
        rows = sweep_figure9("t_msg", values=[0.2, 0.4], iterations=2)
        assert len(rows) == 2
        assert {"t_msg", "total_time", "time_per_iteration",
                "protocol_messages"} <= set(rows[0])

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            sweep_figure9("t_nonsense")

    def test_lemma1_check_reports_bound_and_measurement(self):
        result = lemma1_check()
        assert result["measured_total"] > 0
        assert result["bound"] > 0


# ----------------------------------------------------------------------
# Experiment 2 (Figures 12/13)
# ----------------------------------------------------------------------
class TestExperiment2:
    def test_all_threads_raise_and_recover(self):
        result = run_experiment2(1.0, 0.3)
        for reports in result.reports:
            assert all(r.status is ActionStatus.RECOVERED for r in reports)
        assert result.resolution_calls == 1

    def test_ours_message_count_matches_formula(self):
        system = build_experiment2(1.0, 0.3, algorithm="ours")
        system.run_to_completion()
        assert system.network.stats.resolution_messages() == \
            messages_all_exceptions(3)

    def test_cr_is_slower_for_all_grid_points(self):
        rows = sweep_figure12_tmmax(values=[1.0, 1.8])
        assert all(row["time_cr"] > row["time_ours"] for row in rows)
        rows = sweep_figure12_tres(values=[0.3, 1.1])
        assert all(row["time_cr"] > row["time_ours"] for row in rows)

    def test_tres_slope_gap_mirrors_resolution_call_counts(self):
        rows = sweep_figure12_tres(values=[0.3, 0.7, 1.1, 1.5])
        ours = linear_fit(*series(rows, "t_res", "time_ours"))["slope"]
        cr = linear_fit(*series(rows, "t_res", "time_cr"))["slope"]
        assert cr > ours
        assert rows[0]["resolution_calls_cr"] > rows[0]["resolution_calls_ours"]

    def test_scales_to_more_threads(self):
        result = run_experiment2(0.5, 0.1, n_threads=5)
        assert result.protocol_messages >= messages_all_exceptions(5)
        for reports in result.reports:
            assert all(r.status is ActionStatus.RECOVERED for r in reports)


# ----------------------------------------------------------------------
# Complexity harness
# ----------------------------------------------------------------------
class TestComplexityHarness:
    def test_invalid_exception_count_rejected(self):
        with pytest.raises(ValueError):
            run_complexity_scenario(3, 0)
        with pytest.raises(ValueError):
            run_complexity_scenario(3, 4)

    def test_table_covers_requested_thread_counts(self):
        rows = message_complexity_table(thread_counts=(2, 3))
        assert [row["n_threads"] for row in rows] == [2, 3]
        for row in rows:
            assert row["measured_single"] == row["paper_single"]

    def test_signalling_messages_counted_separately(self):
        outcome = run_complexity_scenario(3, 1)
        assert outcome["signalling_messages"] == 3 * 2


# ----------------------------------------------------------------------
# Reporting helpers
# ----------------------------------------------------------------------
class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "0.123" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_linear_fit_recovers_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit["slope"] == pytest.approx(2.0)
        assert fit["intercept"] == pytest.approx(1.0)
        assert fit["r_squared"] == pytest.approx(1.0)

    def test_linear_fit_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([1, 1], [1, 2])

    def test_paper_reference_tables_have_all_rows(self):
        figure9 = paper_reference_figure9()
        assert len(figure9["varying_tmmax"]) == 14
        assert len(figure9["varying_tabo"]) == 11
        assert len(figure9["varying_treso"]) == 11
        figure12 = paper_reference_figure12()
        assert len(figure12["varying_tmmax"]) == 8
        assert len(figure12["varying_tres"]) == 7

    def test_paper_figure12_shape_cr_always_slower(self):
        for rows in paper_reference_figure12().values():
            for row in rows:
                assert row["paper_time_cr"] > row["paper_time_ours"]


# ----------------------------------------------------------------------
# Cross-cutting: the measured run respects the analytic model
# ----------------------------------------------------------------------
class TestCrossChecks:
    def test_measured_exception_handling_within_lemma1_bound(self):
        t_msg, t_abort, t_reso = 0.4, 0.3, 0.2
        result = run_experiment1(t_msg, t_abort, t_reso, iterations=1)
        bound = lemma1_completion_bound(TimingParameters(
            t_msg_max=t_msg, t_resolution=t_reso, t_abort=t_abort,
            t_handler_max=HANDLER_TIME, max_nesting=1))
        measured = result.total_time - NORMAL_COMPUTATION_TIME - 3 * t_msg
        assert measured <= bound

    def test_network_fifo_assumption_holds_during_experiments(self):
        system = build_experiment2(0.7, 0.2)
        system.run_to_completion()
        deliveries = {}
        for envelope in system.network.trace:
            if envelope.deliver_time is None:
                continue
            link = (envelope.source, envelope.destination)
            deliveries.setdefault(link, []).append(
                (envelope.sequence, envelope.deliver_time))
        for link, entries in deliveries.items():
            times = [t for _seq, t in sorted(entries)]
            assert times == sorted(times), f"FIFO violated on {link}"

    def test_every_raised_exception_is_eventually_resolved_or_covered(self):
        system = build_experiment1(0.3, 0.2, 0.1, iterations=3)
        system.run_to_completion()
        metrics = system.metrics
        assert metrics.resolutions == 3
        assert metrics.handlers_invoked == 3 * 3     # three threads per round
