"""Robustness and property tests across the whole stack.

These tests stress the less-travelled paths: arbitrary exception timings,
exception storms with many threads, per-link asymmetric latency, and
deterministic repeatability of entire runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CAActionDefinition,
    HandlerMap,
    HandlerResult,
    RoleDefinition,
    internal,
)
from repro.core.exception_graph import generate_full_graph
from repro.net import ConstantLatency, PerLinkLatency
from repro.runtime import ActionStatus, DistributedCASystem, RuntimeConfig

from tests.conftest import run_single_action


def build_raise_scenario(n_threads, raise_delays, latency=None,
                         algorithm="ours", resolution_time=0.05):
    """N threads; thread i raises fault_i after raise_delays[i] (None = never)."""
    system = DistributedCASystem(
        RuntimeConfig(algorithm=algorithm, resolution_time=resolution_time),
        latency=latency or ConstantLatency(0.1))
    threads = [f"T{i}" for i in range(1, n_threads + 1)]
    system.add_threads(threads)
    primitives = [internal(f"fault_{i}") for i in range(n_threads)]
    graph = generate_full_graph(primitives, max_level=1, action_name="Storm")

    def handler(ctx):
        return HandlerResult.success()

    def make_role(index):
        delay = raise_delays[index]

        def body(ctx):
            if delay is None:
                yield ctx.delay(5.0)
            else:
                yield ctx.delay(delay)
                ctx.raise_exception(primitives[index])
        return body

    roles = [RoleDefinition(f"r{i}", make_role(i),
                            HandlerMap(default_handler=handler))
             for i in range(n_threads)]
    action = CAActionDefinition("Storm", roles,
                                internal_exceptions=primitives, graph=graph)
    binding = {f"r{i}": threads[i] for i in range(n_threads)}
    return system, action, binding


class TestExceptionStorms:
    @given(delays=st.lists(
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=2.0)),
        min_size=2, max_size=5).filter(lambda d: any(x is not None for x in d)))
    @settings(max_examples=25, deadline=None)
    def test_property_any_raise_pattern_terminates_consistently(self, delays):
        system, action, binding = build_raise_scenario(len(delays), delays)
        reports = run_single_action(system, action, binding)
        # Every thread finishes, recovers, and handles the same resolution.
        assert len(reports) == len(delays)
        assert all(report.status is ActionStatus.RECOVERED
                   for report in reports)
        resolved = {report.resolved for report in reports}
        assert len(resolved) == 1

    def test_simultaneous_raises_with_identical_timestamps(self):
        delays = [0.5] * 4
        system, action, binding = build_raise_scenario(4, delays)
        reports = run_single_action(system, action, binding)
        assert all(report.status is ActionStatus.RECOVERED
                   for report in reports)
        assert system.metrics.resolutions == 1

    def test_eight_thread_storm(self):
        delays = [0.1 * (i + 1) for i in range(8)]
        system, action, binding = build_raise_scenario(8, delays)
        reports = run_single_action(system, action, binding)
        assert all(report.status is ActionStatus.RECOVERED
                   for report in reports)
        # Theorem 2 bound for a single level: N² − 1.
        assert system.network.stats.resolution_messages() <= 8 * 8 - 1

    @pytest.mark.parametrize("algorithm",
                             ["ours", "campbell-randell", "romanovsky96"])
    def test_storm_under_each_algorithm(self, algorithm):
        delays = [0.2, 0.4, None, 0.6]
        system, action, binding = build_raise_scenario(4, delays,
                                                       algorithm=algorithm)
        reports = run_single_action(system, action, binding)
        assert all(report.status is ActionStatus.RECOVERED
                   for report in reports)


class TestAsymmetricLatency:
    def test_per_link_latency_does_not_break_coordination(self):
        latency = PerLinkLatency(default=0.05)
        latency.set_link("T1", "T3", 1.5)
        latency.set_link("T3", "T1", 1.5)
        system, action, binding = build_raise_scenario(
            3, [0.3, None, 0.5], latency=latency)
        reports = run_single_action(system, action, binding)
        assert all(report.status is ActionStatus.RECOVERED
                   for report in reports)
        resolved = {report.resolved.name for report in reports}
        assert len(resolved) == 1


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            system, action, binding = build_raise_scenario(
                3, [0.3, 0.7, None])
            run_single_action(system, action, binding)
            return (system.now,
                    system.network.stats.sent,
                    tuple(sorted(system.metrics.resolved_by_name.items())),
                    tuple(system.metrics.events))

        assert run_once() == run_once()

    def test_experiment_harness_is_deterministic(self):
        from repro.bench import run_experiment2
        first = run_experiment2(1.3, 0.4)
        second = run_experiment2(1.3, 0.4)
        assert first.total_time == second.total_time
        assert first.protocol_messages == second.protocol_messages
