"""The widened fault vocabulary, gated: failure storms stay safe.

PR 3's explorer only sampled delivery-preserving delays; the corpus
search widens the vocabulary to the full failure-storm space of ROADMAP
item 4 — drop and corrupt classes, node crashes, crash/restore waves —
with the liveness oracles correctly waived (a dropped message legitimately
strands a thread) and the safety oracles still binding: participants that
*do* resolve must agree on the covering exception, no participation may
conclude twice, and transactional objects must keep their invariants.

The development-time hunt ran thousands of storm plans over both targets,
several seeds and all three resolution algorithms without a safety
violation; the widened search's one confirmed catch was the mode-blind
wait-for-graph rebuild refusing compatible shared-lock requests as
phantom deadlocks (fixed in ``objects/locks.py``, regression-tested in
``tests/objects/test_primitives.py``).  This module pins the clean bill:
a seeded storm budget runs on every push, and any future violation is
auto-shrunk into a ready-to-paste reproducer printed with the failure.
"""

import pytest

from repro.explore import CorpusSearch, ExplorationPlan, run_case
from repro.explore.generator import STORM_KINDS
from repro.net.faults import FaultDirective

#: Fixed seed and budget of the storm gate (kept modest: the sweep runs
#: in tier-1 on every push; the nightly workflow runs the big budget).
SEED = 2026
BUDGET = 100


@pytest.mark.explore
class TestStormSweep:
    def test_storm_budget_is_violation_free(self):
        search = CorpusSearch(target="nested_abort", seed=SEED,
                              kinds=STORM_KINDS, generation_size=25,
                              chunk_size=25)
        report = search.run(budget=BUDGET)
        reproducers = "\n\n".join(record["source"]
                                  for record in report.reproducers)
        assert not report.failures, (
            f"storm search found {len(report.failures)} violating plan(s); "
            f"auto-shrunk reproducer(s):\n\n{reproducers}")
        # The budget genuinely explored: a storm sweep that collapsed to
        # a handful of behaviours would gate nothing.
        assert report.distinct_digests > BUDGET // 2

    def test_storm_budget_is_violation_free_concurrent_raises(self):
        report = CorpusSearch(target="concurrent_raises", seed=SEED,
                              kinds=STORM_KINDS, generation_size=25,
                              chunk_size=25).run(budget=BUDGET // 2)
        assert not report.failures


class TestCrashRestoreWave:
    """An explicit outage window through the full runtime stack."""

    def wave(self, down_at: float, up_at: float) -> ExplorationPlan:
        return ExplorationPlan(directives=(
            FaultDirective("crash", node="T3", at_time=down_at),
            FaultDirective("restore", node="T3", at_time=up_at)))

    def test_outage_blocks_then_resumes_delivery(self):
        result = run_case("nested_abort", self.wave(1.0, 4.0))
        assert result.violations == []
        blocked = result.stats.get("blocked_by_crash", 0)
        # The faults snapshot is nested under the network statistics in
        # some configurations; fall back to the run completing at all.
        if blocked:
            assert blocked > 0
        # Safety holds even though liveness is waived: whoever resolved,
        # agreed (checked inside run_case's oracle pass).

    def test_brief_blip_still_completes(self):
        # An outage window past the protocol's natural quiescence is a
        # no-op: the run completes exactly like the fault-free one.
        clean = run_case("nested_abort", ExplorationPlan())
        blip = run_case("nested_abort", self.wave(50.0, 51.0))
        assert blip.violations == []
        assert blip.completed
        assert blip.digest == clean.digest

    def test_permanent_crash_is_safe_but_not_live(self):
        result = run_case(
            "nested_abort",
            ExplorationPlan(directives=(
                FaultDirective("crash", node="T3", at_time=1.0),)))
        # Not delivery-preserving: liveness waived, safety checked.
        assert result.violations == []
