"""Regression test for the lost-Commit abortion race (system level).

Scenario: ``T1``–``T3`` run action ``Outer``; ``T2``/``T3`` enter the nested
action ``Inner``.  ``T2`` raises in ``Inner`` and resolves it (it is the
largest exceptional thread), but the latency model delays its ``Commit`` to
``T3``.  While that Commit is in flight, ``T1`` raises in ``Outer``, so both
``T2`` (whose Inner handler is interrupted) and ``T3`` (still awaiting the
Inner resolution) abort ``Inner``.  The delayed Commit lands on ``T3``
squarely inside its abortion window.

Before the fix this run deadlocked: ``T3`` handled the stale Commit, which
emptied ``LEi`` and lost the record of ``T1``'s outer exception, so ``T3``
(the largest exceptional thread after its abortion handler signalled) never
saw a complete picture and never resolved — every thread was stranded and
``run_to_completion`` raised ``RuntimeError`` ("simulation ended before the
awaited event fired").  After the fix the Commit is ignored/retained by the
coordinator's abortion bookkeeping and the run completes with all three
threads recovering through the ``abort_residue&outer_fault`` cover.
"""

import pytest

from repro.core.action import CAActionDefinition, RoleDefinition
from repro.core.exception_graph import generate_full_graph
from repro.core.exceptions import internal
from repro.core.handlers import HandlerMap, HandlerResult
from repro.core.messages import CommitMessage
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.runtime.config import RuntimeConfig
from repro.runtime.report import ActionStatus
from repro.runtime.system import DistributedCASystem


class CommitDelayPlan(FaultPlan):
    """Latency model add-on: delay ``Commit`` messages on one link."""

    def __init__(self, source: str, destination: str, extra: float) -> None:
        super().__init__()
        self._commit_link = (source, destination)
        self._commit_extra = extra

    def apply(self, envelope, now):
        deliver, extra = super().apply(envelope, now)
        if deliver and isinstance(envelope.payload, CommitMessage) and \
                (envelope.source, envelope.destination) == self._commit_link:
            extra += self._commit_extra
            self.stats.delayed += 1
        return deliver, extra


OUTER_FAULT = internal("outer_fault")
ABORT_RESIDUE = internal("abort_residue")
INNER_FAULT = internal("inner_fault")


def build_delayed_commit_system(commit_delay: float = 3.0,
                                abort_time: float = 3.0):
    """The race scenario; the Inner Commit T2->T3 arrives mid-abortion."""
    config = RuntimeConfig(algorithm="ours", abort_time=abort_time,
                           resolution_time=0.0)
    system = DistributedCASystem(
        config, latency=ConstantLatency(0.1),
        faults=CommitDelayPlan("T2", "T3", commit_delay))
    system.add_threads(["T1", "T2", "T3"])

    outer_graph = generate_full_graph([OUTER_FAULT, ABORT_RESIDUE],
                                      action_name="Outer")
    inner_graph = generate_full_graph([INNER_FAULT], action_name="Inner")

    def outer_handler(ctx):
        yield ctx.delay(0.2)
        return HandlerResult.success()

    def slow_inner_handler(ctx):
        # Keeps T2 in its (abort-interruptible) handling phase when the
        # outer exception arrives.
        yield ctx.delay(10.0)
        return HandlerResult.success()

    def signal_residue(ctx):
        return HandlerResult.signal(ABORT_RESIDUE)

    def inner_raiser(ctx):
        yield ctx.delay(1.0)
        ctx.raise_exception(INNER_FAULT)

    def inner_worker(ctx):
        yield ctx.delay(50.0)

    inner = CAActionDefinition(
        "Inner",
        [RoleDefinition("b2", inner_raiser,
                        HandlerMap(default_handler=slow_inner_handler)),
         RoleDefinition("b3", inner_worker,
                        HandlerMap(abortion_handler=signal_residue,
                                   default_handler=slow_inner_handler))],
        internal_exceptions=[INNER_FAULT], graph=inner_graph, parent="Outer")

    def outer_raiser(ctx):
        yield ctx.delay(2.0)
        ctx.raise_exception(OUTER_FAULT)

    def nesting_role(role):
        def body(ctx):
            yield ctx.delay(0.1)
            report = yield from ctx.perform_nested("Inner", role)
            return report
        return body

    outer = CAActionDefinition(
        "Outer",
        [RoleDefinition("a1", outer_raiser,
                        HandlerMap(default_handler=outer_handler)),
         RoleDefinition("a2", nesting_role("b2"),
                        HandlerMap(default_handler=outer_handler)),
         RoleDefinition("a3", nesting_role("b3"),
                        HandlerMap(default_handler=outer_handler))],
        internal_exceptions=[OUTER_FAULT, ABORT_RESIDUE], graph=outer_graph)

    system.define_action(outer)
    system.define_action(inner)
    system.bind("Outer", {"a1": "T1", "a2": "T2", "a3": "T3"})
    system.bind("Inner", {"b2": "T2", "b3": "T3"})

    def make_program(role):
        def program(ctx):
            report = yield from ctx.perform_action("Outer", role)
            return report
        return program

    for thread, role in (("T1", "a1"), ("T2", "a2"), ("T3", "a3")):
        system.spawn(thread, make_program(role))
    return system


class TestDelayedCommitRegression:
    def test_run_completes_despite_commit_in_abortion_window(self):
        system = build_delayed_commit_system()
        reports = system.run_to_completion()      # deadlocked before the fix
        assert [r.status for r in reports] == [ActionStatus.RECOVERED] * 3
        assert all(r.resolved.name == "abort_residue&outer_fault"
                   for r in reports)

    def test_no_thread_left_suspended_or_mid_abort(self):
        system = build_delayed_commit_system()
        system.run_to_completion()
        for partition in system.partitions.values():
            assert partition.status == "idle"
            assert partition.pending_abort is None
            assert partition.coordinator.pending_abort_target is None
            assert not partition.coordinator.retained

    def test_delay_was_actually_injected(self):
        system = build_delayed_commit_system()
        system.run_to_completion()
        assert system.network.faults.stats.delayed >= 1

    def test_fast_commit_baseline_unaffected(self):
        # With no extra Commit delay the same application completes too,
        # and reaches the same covering exception.
        system = build_delayed_commit_system(commit_delay=0.0)
        reports = system.run_to_completion()
        assert [r.status for r in reports] == [ActionStatus.RECOVERED] * 3
        assert all(r.resolved.name == "abort_residue&outer_fault"
                   for r in reports)
