"""Regression tests for stale protocol-message retention.

Both bugs below were found mechanically by the fault-space explorer
(``repro.explore``) sweeping seeded delay plans over the nested-abort
target, and shrunk to the single-directive reproducers used here:

* a delayed ``Exception``/``Suspended`` message arriving *after* its
  action instance ended used to be retained forever ("till Ti enters
  A*" — but this instance will never be entered again), leaking the
  message and, in looping workloads, poisoning the next instance of the
  same action name;
* a delayed ``EnterAction`` message could make a thread abandon a nested
  entry attempt (the enclosing exception interrupts the entry barrier),
  leaving peer messages stamped for the never-entered instance parked
  forever.

The fix stamps the resolution messages with their action *instance* key
and retires finished/abandoned instances, so stale messages are dropped
on arrival (or at replay) instead of retained.
"""

from repro.core.resolution import ResolutionCoordinator
from repro.core.state import ActionContext
from repro.core.messages import ExceptionMessage, SuspendedMessage
from repro.core.exception_graph import generate_full_graph
from repro.core.exceptions import internal
from repro.explore import ExplorationPlan, run_case
from repro.explore.targets import get_target
from repro.net.faults import FaultDirective


def _plan(*directives):
    return ExplorationPlan(directives=tuple(directives))


class TestExplorerFoundRetentionLeaks:
    def test_exception_delayed_past_abortion_is_dropped_not_retained(self):
        # Shrunk reproducer: the 2nd message on T2->T3 (the Inner
        # Exception) arrives after T3 already aborted Inner.
        plan = _plan(FaultDirective("delay_nth", source="T2",
                                    destination="T3", n=2, extra=2.209))
        result = run_case("nested_abort", plan)
        assert result.violations == []
        assert result.completed

    def test_suspended_delayed_past_instance_end_is_dropped(self):
        plan = _plan(FaultDirective("delay_type", source="T3",
                                    destination="T2",
                                    type_name="SuspendedMessage", extra=3.733))
        result = run_case("nested_abort", plan)
        assert result.violations == []

    def test_abandoned_entry_retires_the_instance(self):
        # The delayed EnterAction(Inner) makes T3 abandon the Inner entry
        # barrier when the outer exception arrives; the Inner Exception
        # stamped for that instance must not wait for an entry that can
        # never happen.
        plan = _plan(FaultDirective("delay_nth", source="T2",
                                    destination="T3", n=2, extra=2.209),
                     FaultDirective("delay_nth", source="T3",
                                    destination="T1", n=2, extra=3.179))
        system = get_target("nested_abort").build(plan.make_fault_plan())
        system.run()
        for partition in system.partitions.values():
            assert partition.coordinator.retained == []
            assert partition.thread_process.triggered


class TestCoordinatorInstanceTracking:
    def _coordinator_in(self, instance):
        graph = generate_full_graph([internal("e")], action_name="A")
        coordinator = ResolutionCoordinator("T1")
        context = ActionContext("A", ("T1", "T2"), graph, instance=instance)
        coordinator.enter_action(context)
        return coordinator, context

    def test_message_for_finished_instance_is_dropped(self):
        coordinator, _ = self._coordinator_in("A#1")
        coordinator.leave_action("A")
        coordinator.receive(ExceptionMessage("A", "T2", internal("e"),
                                             instance="A#1"))
        assert coordinator.retained == []
        assert any("stale" in line for line in coordinator.trace)

    def test_leave_action_preserves_future_instance_messages(self):
        # A message parked for a future occurrence (the peer already
        # re-entered A as A#2) must survive this thread leaving A#1 —
        # name-based dropping used to destroy it.
        coordinator, _ = self._coordinator_in("A#1")
        early = SuspendedMessage("A", "T2", instance="A#2")
        coordinator.receive(early)
        assert coordinator.retained == [early]
        coordinator.leave_action("A")
        assert coordinator.retained == [early]
        graph = generate_full_graph([internal("e")], action_name="A")
        coordinator.enter_action(ActionContext("A", ("T1", "T2"), graph,
                                               instance="A#2"))
        assert coordinator.retained == []
        assert "T2" in coordinator.le.threads_reported("A")

    def test_message_for_future_instance_is_parked_then_replayed(self):
        coordinator, _ = self._coordinator_in("A#1")
        coordinator.leave_action("A")
        # T2 already re-entered as instance A#2 and suspended there.
        early = SuspendedMessage("A", "T2", instance="A#2")
        coordinator.receive(early)
        assert coordinator.retained == [early]
        graph = generate_full_graph([internal("e")], action_name="A")
        coordinator.enter_action(ActionContext("A", ("T1", "T2"), graph,
                                               instance="A#2"))
        assert coordinator.retained == []
        # The replayed Suspended is recorded for the new instance (and the
        # receiving thread duly suspends itself in response).
        assert "T2" in coordinator.le.threads_reported("A")

    def test_unstamped_messages_keep_legacy_behaviour(self):
        coordinator = ResolutionCoordinator("T1")
        message = ExceptionMessage("A", "T2", internal("e"))
        coordinator.receive(message)
        assert coordinator.retained == [message]

    def test_abandon_instance_drops_parked_messages(self):
        coordinator = ResolutionCoordinator("T1")
        message = ExceptionMessage("A", "T2", internal("e"), instance="A#1")
        coordinator.receive(message)
        assert coordinator.retained == [message]
        coordinator.abandon_instance("A#1")
        assert coordinator.retained == []
        # Later arrivals for the abandoned instance are dropped too.
        coordinator.receive(ExceptionMessage("A", "T2", internal("e"),
                                             instance="A#1"))
        assert coordinator.retained == []
