"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import pytest

from repro.core import (
    ActionContext,
    CAActionDefinition,
    ExceptionGraph,
    HandlerMap,
    HandlerResult,
    RoleDefinition,
    internal,
)
from repro.core.effects import HandleResolved, SendTo
from repro.core.exception_graph import generate_full_graph
from repro.core.resolution import CoordinatorBase, ResolutionCoordinator
from repro.net import ConstantLatency
from repro.runtime import DistributedCASystem, RuntimeConfig
from repro.simkernel import Kernel


# ----------------------------------------------------------------------
# Pure-coordinator driver: runs the protocol state machines without any
# kernel or network, delivering messages FIFO per link.
# ----------------------------------------------------------------------
class ProtocolDriver:
    """Synchronously delivers coordinator messages between threads."""

    def __init__(self, coordinators: Dict[str, CoordinatorBase]) -> None:
        self.coordinators = coordinators
        self.inflight: List[Tuple[str, object]] = []
        self.handled: Dict[str, object] = {}
        self.message_count = 0
        self.effects_log: List[Tuple[str, object]] = []

    def execute(self, sender: str, effects) -> None:
        for effect in effects:
            self.effects_log.append((sender, effect))
            if isinstance(effect, SendTo):
                for recipient in effect.recipients:
                    self.inflight.append((recipient, effect.message))
                    self.message_count += 1
            elif isinstance(effect, HandleResolved):
                self.handled[sender] = effect.exception

    def deliver_all(self) -> None:
        while self.inflight:
            recipient, message = self.inflight.pop(0)
            self.execute(recipient,
                         self.coordinators[recipient].receive(message))

    def enter_all(self, context_factory) -> None:
        for name, coordinator in self.coordinators.items():
            self.execute(name, coordinator.enter_action(context_factory()))

    def raise_in(self, thread: str, exception) -> None:
        self.execute(thread, self.coordinators[thread].raise_exception(exception))


@pytest.fixture
def protocol_driver_factory():
    """Factory producing a ProtocolDriver over fresh ResolutionCoordinators."""
    def factory(thread_names, coordinator_class=ResolutionCoordinator):
        coordinators = {name: coordinator_class(name) for name in thread_names}
        return ProtocolDriver(coordinators)
    return factory


# ----------------------------------------------------------------------
# Small runtime-system builders
# ----------------------------------------------------------------------
def make_simple_system(n_threads: int = 2, latency: float = 0.05,
                       algorithm: str = "ours",
                       resolution_time: float = 0.0,
                       abort_time: float = 0.0) -> DistributedCASystem:
    """A system with ``n_threads`` threads and no actions defined yet."""
    system = DistributedCASystem(
        RuntimeConfig(algorithm=algorithm, resolution_time=resolution_time,
                      abort_time=abort_time),
        latency=ConstantLatency(latency))
    system.add_threads([f"T{i}" for i in range(1, n_threads + 1)])
    return system


@pytest.fixture
def simple_system():
    return make_simple_system()


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def three_thread_context():
    """An ActionContext for threads T1..T3 with a one-exception graph."""
    fault = internal("fault")
    graph = generate_full_graph([fault])
    return ActionContext("A", ("T1", "T2", "T3"), graph), fault


def run_single_action(system: DistributedCASystem,
                      definition: CAActionDefinition,
                      binding: Dict[str, str]):
    """Define, bind and run one action with one program per thread."""
    system.define_action(definition)
    system.bind(definition.name, binding)

    def make_program(role):
        def program(ctx):
            report = yield from ctx.perform_action(definition.name, role)
            return report
        return program

    for role, thread in binding.items():
        system.spawn(thread, make_program(role))
    return system.run_to_completion()
