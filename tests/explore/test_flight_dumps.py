"""Failing explorer cases auto-dump their flight-recorder timeline.

Reuses the lost-Commit regression vehicle from ``test_rediscovery.py``:
reverting the PR 2 fix makes the canonical one-directive plan deadlock,
which is the cheapest deterministic oracle violation available.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import effects as fx
from repro.core.resolution import ResolutionCoordinator
from repro.explore import ExplorationPlan, Explorer, run_case
from repro.explore.__main__ import _write_reproducers
from repro.net.faults import FaultDirective
from repro.obs import build_spans, read_jsonl

#: The canonical hand-shrunk reproducer: delays the Inner ``Commit``
#: into T3's abortion window (fails only under the reverted fix).
CANONICAL_PLAN = ExplorationPlan(directives=(
    FaultDirective("delay_type", source="T2", destination="T3",
                   type_name="CommitMessage", extra=3.0),))


def _legacy_receive_commit(self, message):
    """The pre-PR2 Commit handling (the lost-Commit race)."""
    context = self.active_context()
    if context is None or context.action != message.action:
        self._trace(f"ignore Commit for {message.action}")
        return [fx.LogEvent(f"{self.thread_id} ignored Commit for "
                            f"{message.action}")]
    self.le.clear()
    self.handling[message.action] = message.exception
    self._trace(f"commit {message.exception.name} in {message.action}")
    return [fx.HandleResolved(message.action, message.exception,
                              resolver=message.resolver)]


@pytest.fixture
def lost_commit_bug(monkeypatch):
    monkeypatch.setattr(ResolutionCoordinator, "_receive_commit",
                        _legacy_receive_commit)


class TestFailingCasesDump:
    def test_oracle_violation_carries_the_timeline(self, lost_commit_bug):
        result = run_case("nested_abort", CANONICAL_PLAN)
        assert result.violations
        assert result.flight is not None
        events = result.flight["events"]
        assert events
        assert result.flight["observed"] >= len(events)
        kinds = {event["kind"] for event in events}
        assert "action.entered" in kinds
        # The deadlock reads off the dump: participations that entered
        # but never concluded are still open at the end of the window.
        _completed, still_open = build_spans(events)
        assert still_open

    def test_passing_case_has_no_flight_dump(self):
        # Same plan against the fixed coordinator: clean, and the
        # always-on ring is not dumped for passing cases.
        result = run_case("nested_abort", CANONICAL_PLAN)
        assert result.violations == []
        assert result.flight is None

    def test_explorer_failures_carry_flight_dumps(self, lost_commit_bug):
        explorer = Explorer(target="nested_abort", seed=2026, budget=20,
                            stop_on_first_failure=True)
        report = explorer.run()
        assert report.failures
        first = report.failures[0]
        assert first.flight is not None
        assert first.flight["events"]

    def test_ambient_capture_is_reused_not_displaced(self):
        # Under an ambient obs.capture() the explorer must adopt the
        # (richer) ambient observation instead of attaching a second
        # flight-only one.
        with obs.capture(obs.ObsConfig()) as cap:
            result = run_case("nested_abort", ExplorationPlan())
        assert result.violations == []
        (observation,) = cap.observations
        assert observation.events, "ambient capture saw the run's events"
        assert observation.metrics is not None


class TestReproducerBundling:
    def test_corpus_reproducers_carry_flight(self, lost_commit_bug):
        from repro.explore import CorpusSearch
        search = CorpusSearch(target="nested_abort", seed=2026,
                              generation_size=5, chunk_size=5, shrink=True)
        report = search.run(budget=60, stop_on_first_failure=True)
        assert report.reproducers
        record = report.reproducers[0]
        assert record["flight"], "shrunk reproducer lacks its flight dump"
        assert record["flight"]["events"]

    def test_write_reproducers_bundles_flight_jsonl(self, tmp_path):
        records = [
            {"source": "# reproducer 0\n",
             "flight": {"capacity": 8, "observed": 3, "truncated": False,
                        "events": [{"t": 0.0, "kind": "action.entered",
                                    "action": "A", "instance": "i0",
                                    "thread": "T1"}]}},
            {"source": "# reproducer 1 (no flight recorded)\n"},
        ]
        directory = tmp_path / "repros"
        paths = _write_reproducers(records, str(directory))
        names = sorted(path.rsplit("/", 1)[1] for path in paths)
        assert names == ["test_reproducer_0.flight.jsonl",
                         "test_reproducer_0.py", "test_reproducer_1.py"]
        dump = read_jsonl(str(directory / "test_reproducer_0.flight.jsonl"))
        assert dump[0]["kind"] == "flight.header"
        assert dump[0]["observed"] == 3
        assert dump[1]["kind"] == "action.entered"
