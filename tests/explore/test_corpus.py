"""Coverage-guided corpus search: persistence, mutation, novelty accounting.

The contracts under test, in order:

* :class:`CorpusEntry` / :class:`Corpus` — digest-dedupe, discovery
  order, least-mutated scheduling and byte-stable JSON persistence;
* :class:`PlanMutator` — mutation and neighbour sweeps are pure
  functions of ``(seed, token, plan, feedback)``;
* :func:`run_plans_chunk` — explicit-plan execution rows, in order,
  with a chunk digest over plan identities and canonical trace digests;
* :class:`CorpusSearch` — enumeration-prefix bootstrap, never re-running
  a known plan, warm restarts from a persisted corpus, and *byte-identical
  novelty accounting* between the sequential path and the scenario
  engine's process pool;
* the coverage claim itself: under an equal storm-vocabulary budget the
  corpus search reaches more distinct trace digests than enumeration.
"""

import json

import pytest

from repro.explore import (
    Corpus,
    CorpusEntry,
    CorpusSearch,
    ExplorationPlan,
    Explorer,
    PlanMutator,
    run_plans_chunk,
)
from repro.explore.corpus import engine_chunk_runner
from repro.explore.generator import STORM_KINDS, FaultPlanGenerator
from repro.net.faults import FaultDirective

THREADS = ("T1", "T2", "T3")


def entry(digest: str, extra: float = 1.0, **kwargs) -> CorpusEntry:
    plan = ExplorationPlan(directives=(
        FaultDirective("delay_link", source="T1", destination="T2",
                       extra=extra),))
    return CorpusEntry(plan=plan, digest=digest, **kwargs)


class TestCorpusEntry:
    def test_round_trips_through_dict(self):
        original = entry("d1", generation=3, parent="d0", failing=True,
                         stats={"by_link": {"T1->T2": 3}})
        original.mutations = 2
        rebuilt = CorpusEntry.from_dict(original.to_dict())
        assert rebuilt == original

    def test_dict_form_omits_empty_optionals(self):
        data = entry("d1").to_dict()
        assert "parent" not in data
        assert "failing" not in data
        assert "stats" not in data


class TestCorpus:
    def test_dedupes_by_digest(self):
        corpus = Corpus()
        assert corpus.add(entry("d1", extra=1.0))
        assert not corpus.add(entry("d1", extra=2.0))  # same behaviour
        assert corpus.add(entry("d2", extra=2.0))
        assert len(corpus) == 2
        assert corpus.digests == ["d1", "d2"]  # discovery order

    def test_schedule_prefers_least_mutated_with_order_tiebreak(self):
        corpus = Corpus(entries=[entry("d1"), entry("d2"), entry("d3")])
        picks = [e.digest for e in corpus.schedule(5)]
        # Round-robin from discovery order: every pick increments the
        # entry's mutations counter, so the load spreads.
        assert picks == ["d1", "d2", "d3", "d1", "d2"]
        assert corpus.schedule(1)[0].digest == "d3"

    def test_schedule_from_empty_corpus_raises(self):
        with pytest.raises(ValueError, match="empty corpus"):
            Corpus().schedule(1)

    def test_save_load_round_trip_is_byte_stable(self, tmp_path):
        corpus = Corpus(target="nested_abort", seed=7, entries=[
            entry("d1", stats={"by_link": {"T1->T2": 3}}),
            entry("d2", extra=2.0, generation=1, parent="d1")])
        path = tmp_path / "corpus.json"
        corpus.save(path)
        reloaded = Corpus.load(path)
        assert reloaded.to_dict() == corpus.to_dict()
        reloaded.save(tmp_path / "again.json")
        assert (tmp_path / "again.json").read_text() == path.read_text()

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported corpus schema"):
            Corpus.from_dict({"schema": 99, "entries": []})


class TestPlanMutator:
    def plan(self) -> ExplorationPlan:
        return ExplorationPlan(directives=(
            FaultDirective("delay_link", source="T2", destination="T3",
                           extra=1.5),), tie_seed=11)

    def test_mutate_is_pure_in_seed_token_plan(self):
        one = PlanMutator(5, THREADS).mutate(self.plan(), "g1-c2")
        two = PlanMutator(5, THREADS).mutate(self.plan(), "g1-c2")
        assert one == two
        other = PlanMutator(5, THREADS).mutate(self.plan(), "g1-c3")
        assert other != one  # distinct tokens derive distinct streams

    def test_mutate_with_feedback_is_pure_and_steers_ordinals(self):
        mutator = PlanMutator(5, THREADS)
        plan = ExplorationPlan(directives=(
            FaultDirective("drop_nth", source="T1", destination="T2", n=6),))
        feedback = {"by_link": {"T1->T2": 3, "T2->T3": 6}}
        children = {mutator.mutate(plan, f"t{i}", feedback=feedback)
                    for i in range(20)}
        assert children == {PlanMutator(5, THREADS).mutate(
            plan, f"t{i}", feedback=feedback) for i in range(20)}
        for child in children:
            for directive in child.directives:
                traffic = feedback["by_link"].get(
                    f"{directive.source}->{directive.destination}")
                if directive.n and traffic:
                    assert directive.n <= traffic

    def test_neighbors_retarget_first_in_link_order(self):
        neighbors = list(PlanMutator(5, THREADS).neighbors(self.plan()))
        first = neighbors[0].directives[0]
        # _links order is (T1,T2) first; the sweep starts with retargets.
        assert (first.source, first.destination) == ("T1", "T2")
        assert first.extra == 1.5  # everything else preserved
        assert neighbors[-1] == self.plan().without_tie_seed()

    def test_neighbors_skip_dead_in_place_perturbations(self):
        dead = ExplorationPlan(directives=(
            FaultDirective("delay_nth", source="T1", destination="T2",
                           n=5, extra=1.0),))
        feedback = {"by_link": {"T1->T2": 3, "T2->T3": 6, "T3->T1": 4}}
        neighbors = list(PlanMutator(5, THREADS).neighbors(
            dead, feedback=feedback))
        # n=5 > 3 observed messages: the directive never fired, so the
        # sweep only proposes revivals — retargets onto links with enough
        # traffic (n folded in), never in-place retimes.
        assert neighbors
        for neighbor in neighbors:
            directive = neighbor.directives[0]
            link = f"{directive.source}->{directive.destination}"
            assert directive.n <= feedback["by_link"][link]


class TestRunPlansChunk:
    def test_rows_in_order_with_stable_chunk_digest(self):
        generator = FaultPlanGenerator(3, THREADS)
        plans = [generator.sample(i).to_dict() for i in range(3)]
        one = run_plans_chunk(target="nested_abort", plans=plans, start=10)
        two = run_plans_chunk(target="nested_abort", plans=plans, start=10)
        assert one == two
        assert [row["index"] for row in one["results"]] == [10, 11, 12]
        assert one["cases"] == 3
        assert all(row["stats"]["delivered"] >= 0 for row in one["results"])


class TestCorpusSearch:
    def test_bootstrap_subsumes_the_enumeration_prefix(self):
        search = CorpusSearch(target="nested_abort", seed=9,
                              generation_size=6, chunk_size=6, shrink=False)
        search.run(budget=6)
        sampled = {search.generator.__class__(
            9, THREADS).sample(i).key() for i in range(6)}
        corpus_keys = {e.plan.key() for e in search.corpus.entries}
        assert corpus_keys <= sampled  # dedupe may drop digest collisions

    def test_never_rerun_a_known_plan(self):
        search = CorpusSearch(target="nested_abort", seed=9,
                              generation_size=10, chunk_size=10,
                              shrink=False)
        executed = []
        original = search.run_chunks

        def spying(points):
            for point in points:
                executed.extend(json.dumps(p, sort_keys=True)
                                for p in point["plans"])
            return original(points)

        search.run_chunks = spying
        search.run(budget=40)
        assert len(executed) == len(set(executed)) == 40

    def test_warm_restart_continues_from_the_persisted_corpus(self, tmp_path):
        path = tmp_path / "corpus.json"
        first = CorpusSearch(target="nested_abort", seed=9,
                             generation_size=10, chunk_size=10, shrink=False)
        first.run(budget=20)
        first.corpus.save(path)
        resumed = CorpusSearch(target="nested_abort", seed=9,
                               corpus=Corpus.load(path),
                               generation_size=10, chunk_size=10,
                               shrink=False)
        report = resumed.run(budget=10)
        # The resumed session only ran fresh plans, and everything it
        # admitted is new on top of the first session's corpus.
        assert report.executed == 10
        assert len(resumed.corpus) == len(first.corpus) + report.novel

    def test_sequential_and_pool_novelty_accounting_is_byte_identical(self):
        def run(run_chunks=None):
            search = CorpusSearch(target="nested_abort", seed=2026,
                                  kinds=STORM_KINDS, generation_size=15,
                                  chunk_size=5, shrink=False,
                                  run_chunks=run_chunks)
            report = search.run(budget=30)
            return (report.summary(),
                    json.dumps(search.corpus.to_dict(), sort_keys=True))

        sequential = run()
        pooled = run(engine_chunk_runner(parallel=True, max_workers=3))
        assert pooled == sequential

    def test_report_summary_counts(self):
        report = CorpusSearch(target="nested_abort", seed=9,
                              generation_size=10, chunk_size=10,
                              shrink=False).run(budget=20)
        summary = report.summary()
        assert summary["executed"] == 20
        assert summary["generations"] == 2
        assert summary["distinct_digests"] == report.distinct_digests
        assert summary["first_failure_at"] is None


class TestCoverageClaim:
    def test_corpus_search_beats_enumeration_on_distinct_digests(self):
        budget = 60
        enumeration = Explorer(target="nested_abort", seed=2026,
                               budget=budget, kinds=STORM_KINDS).run()
        enumerated = len({case.digest for case in enumeration.cases})
        report = CorpusSearch(target="nested_abort", seed=2026,
                              kinds=STORM_KINDS, generation_size=20,
                              chunk_size=20, shrink=False).run(budget=budget)
        assert report.executed == budget
        assert report.distinct_digests > enumerated
