"""Fixed-seed explorer budgets: clean sweeps over the current code.

The small budgets run in tier-1; the full 200-plan budgets carry the
``explore`` marker and run in the nightly/``workflow_dispatch`` CI job
(``pytest -m explore``).
"""

import pytest

from repro.explore import Explorer


class TestTier1Budgets:
    def test_nested_abort_small_budget_clean(self):
        report = Explorer(target="nested_abort", seed=2026, budget=40).run()
        assert len(report.cases) == 40
        assert report.failures == [], "\n".join(
            case.describe() for case in report.failures)

    def test_concurrent_raises_small_budget_clean(self):
        report = Explorer(target="concurrent_raises", seed=2026,
                          budget=25).run()
        assert report.failures == [], "\n".join(
            case.describe() for case in report.failures)

    def test_report_summary_of_clean_sweep_is_empty(self):
        report = Explorer(target="nested_abort", seed=1, budget=5).run()
        assert report.summary() == {}
        assert len(report.digest()) == 64


@pytest.mark.explore
class TestNightlyBudgets:
    def test_nested_abort_full_budget_clean(self):
        report = Explorer(target="nested_abort", seed=2026, budget=200).run()
        assert report.failures == [], "\n".join(
            case.describe() for case in report.failures)

    def test_concurrent_raises_full_budget_with_baselines_clean(self):
        report = Explorer(target="concurrent_raises", seed=2026, budget=200,
                          baselines=("campbell-randell",
                                     "romanovsky96")).run()
        assert report.failures == [], "\n".join(
            case.describe() for case in report.failures)

    def test_full_vocabulary_budget_upholds_safety(self):
        # Drop/corrupt/crash plans may legitimately strand threads (the
        # liveness oracles are conditioned away), but the safety oracles
        # — agreement, exactly-one outcome, no Python-level crash — must
        # hold across the whole vocabulary.
        from repro.explore.generator import SAMPLABLE_KINDS
        report = Explorer(target="nested_abort", seed=2026, budget=200,
                          kinds=SAMPLABLE_KINDS).run()
        assert report.failures == [], "\n".join(
            case.describe() for case in report.failures)
