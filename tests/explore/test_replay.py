"""Deterministic replay: same (seed, plan) → byte-identical runs."""

from repro.bench.engine import run_scenario
from repro.explore import ExplorationPlan, run_case
from repro.explore.targets import get_target
from repro.explore.trace import TraceRecorder, canonical_trace, trace_digest
from repro.net.faults import FaultDirective

RACE_PLAN = ExplorationPlan(directives=(
    FaultDirective("delay_type", source="T2", destination="T3",
                   type_name="CommitMessage", extra=3.0),))


def _run_once(plan, target="nested_abort"):
    system = get_target(target).build(plan.make_fault_plan(),
                                      tie_seed=plan.tie_seed)
    recorder = TraceRecorder(system)
    system.run()
    return canonical_trace(system, recorder), system.network.stats.snapshot()


class TestByteIdenticalReplay:
    def test_same_plan_twice_identical_trace_and_stats(self):
        first_trace, first_stats = _run_once(RACE_PLAN)
        second_trace, second_stats = _run_once(RACE_PLAN)
        assert first_trace == second_trace
        assert first_stats == second_stats

    def test_jittered_plan_is_deterministic_but_differs_from_natural(self):
        jittered = ExplorationPlan(tie_seed=1234)
        natural = ExplorationPlan()
        jittered_trace, _ = _run_once(jittered)
        assert jittered_trace == _run_once(jittered)[0]
        assert jittered_trace != _run_once(natural)[0]

    def test_different_tie_seeds_explore_different_schedules(self):
        digests = {trace_digest(_run_once(ExplorationPlan(tie_seed=s))[0])
                   for s in (1, 2, 3, 4)}
        assert len(digests) > 1

    def test_run_case_digest_matches_across_calls(self):
        assert run_case("nested_abort", RACE_PLAN).digest == \
            run_case("nested_abort", RACE_PLAN).digest

    def test_trace_covers_kernel_network_and_coordinators(self):
        trace_text, _ = _run_once(RACE_PLAN)
        assert "== kernel ==" in trace_text
        assert "== network ==" in trace_text
        assert "CommitMessage" in trace_text
        assert "== statistics ==" in trace_text


class TestEngineSweepDeterminism:
    def test_parallel_and_sequential_chunks_byte_identical(self):
        points = [{"target": "nested_abort", "seed": 2026,
                   "start": start, "stop": start + 10}
                  for start in (0, 10, 20)]
        sequential = run_scenario("explore", points=points, parallel=False)
        parallel = run_scenario("explore", points=points, parallel=True)
        assert sequential == parallel

    def test_chunked_sweep_equals_one_big_sweep(self):
        chunks = run_scenario("explore", points=[
            {"target": "nested_abort", "seed": 9, "start": 0, "stop": 10},
            {"target": "nested_abort", "seed": 9, "start": 10, "stop": 20},
        ])
        whole = run_scenario("explore", points=[
            {"target": "nested_abort", "seed": 9, "start": 0, "stop": 20},
        ])
        assert sum(row["cases"] for row in chunks) == whole[0]["cases"]
        assert sum(row["failures"] for row in chunks) == whole[0]["failures"]
        # The chunk digests concatenate to the whole sweep's digest input,
        # so equality of case sets shows up as equality of case digests.
        import hashlib
        from repro.explore import Explorer
        explorer = Explorer(target="nested_abort", seed=9, budget=20)
        report = explorer.run()
        digest = hashlib.sha256()
        for case in report.cases:
            digest.update(case.plan.key().encode("utf-8"))
            digest.update(case.digest.encode("utf-8"))
        assert whole[0]["digest"] == digest.hexdigest()
