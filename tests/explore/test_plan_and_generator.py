"""Fault directives, exploration plans and the seeded generator."""

import json

import pytest

from repro.explore import ExplorationPlan, FaultPlanGenerator
from repro.explore.generator import DEFAULT_KINDS, DEFAULT_MESSAGE_TYPES
from repro.net.faults import DIRECTIVE_KINDS, FaultDirective, FaultPlan
from repro.net.message import Envelope


class TestFaultDirective:
    def test_round_trips_through_dict(self):
        directive = FaultDirective("delay_type", source="T2", destination="T3",
                                   type_name="CommitMessage", extra=3.0)
        data = directive.to_dict()
        assert json.loads(json.dumps(data)) == data  # JSON-serializable
        assert FaultDirective.from_dict(data) == directive

    def test_dict_omits_defaults(self):
        directive = FaultDirective("crash", node="T1")
        assert directive.to_dict() == {"kind": "crash", "node": "T1"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown directive kind"):
            FaultDirective("meteor_strike")

    def test_delivery_preserving_classification(self):
        assert FaultDirective("delay_link", source="A", destination="B",
                              extra=1.0).preserves_delivery
        assert not FaultDirective("drop_nth", source="A", destination="B",
                                  n=1).preserves_delivery
        assert not FaultDirective("crash", node="A").preserves_delivery

    def test_every_kind_has_a_description(self):
        for kind in DIRECTIVE_KINDS:
            directive = FaultDirective(kind, source="A", destination="B",
                                       n=1, extra=0.5, type_name="X",
                                       node="A")
            assert directive.describe()


class TestFaultPlanSerialization:
    def test_plan_records_and_round_trips_directives(self):
        plan = FaultPlan()
        plan.drop_nth_message("A", "B", 2)
        plan.delay_message_type("B", "A", "CommitMessage", 1.5)
        plan.delay_nth_message("A", "B", 3, 0.5)
        plan.crash_node("C", at_time=4.0)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.directives == plan.directives
        assert rebuilt.to_dict() == plan.to_dict()

    def test_rebuilt_plan_behaves_identically(self):
        plan = FaultPlan()
        plan.drop_nth_message("A", "B", 1)
        plan.delay_nth_message("A", "B", 2, 2.0)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        for candidate in (plan, rebuilt):
            first = Envelope("A", "B", "m1")
            second = Envelope("A", "B", "m2")
            assert candidate.apply(first, 0.0) == (False, 0.0)
            assert candidate.apply(second, 0.0) == (True, 2.0)

    def test_preserves_delivery(self):
        delays = FaultPlan()
        delays.add_link_delay("A", "B", 1.0)
        assert delays.preserves_delivery()
        drops = FaultPlan()
        drops.drop_nth_message("A", "B", 1)
        assert not drops.preserves_delivery()
        assert not FaultPlan(drop_probability=0.5).preserves_delivery()

    def test_restore_node_keeps_crash_history_and_round_trips(self):
        plan = FaultPlan()
        plan.crash_node("A")
        plan.restore_node("A")
        assert [d.kind for d in plan.directives] == ["crash", "restore"]
        assert not plan.is_crashed("A", 10.0)
        # The crash happened: the plan must not classify as
        # delivery-preserving, and the rebuilt plan must behave the same.
        assert not plan.preserves_delivery()
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.directives == plan.directives
        assert not rebuilt.is_crashed("A", 10.0)

    def test_timed_restore_models_an_outage_window(self):
        """Crash at t1 + restore at t2 > t1 means down exactly on [t1, t2)."""
        plan = FaultPlan()
        plan.crash_node("A", at_time=2.0)
        plan.restore_node("A", at_time=5.0)
        assert not plan.is_crashed("A", 1.0)
        assert plan.is_crashed("A", 2.0)
        assert plan.is_crashed("A", 4.9)
        assert not plan.is_crashed("A", 5.0)
        assert not plan.is_crashed("A", 10.0)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        for now, expected in ((1.0, False), (3.0, True), (6.0, False)):
            assert rebuilt.is_crashed("A", now) is expected
        # A timed restore also revives an immediately-crashed node.
        wave = FaultPlan()
        wave.crash_node("B")
        wave.restore_node("B", at_time=3.0)
        assert wave.is_crashed("B", 0.0)
        assert not wave.is_crashed("B", 3.0)
        assert not wave.preserves_delivery()


class TestExplorationPlan:
    def test_round_trips_with_tie_seed(self):
        plan = ExplorationPlan(
            directives=(FaultDirective("delay_link", source="A",
                                       destination="B", extra=1.0),),
            tie_seed=99)
        rebuilt = ExplorationPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan
        assert rebuilt.key() == plan.key()

    def test_shrinking_helpers(self):
        a = FaultDirective("delay_link", source="A", destination="B", extra=1.0)
        b = FaultDirective("drop_nth", source="B", destination="A", n=1)
        plan = ExplorationPlan(directives=(a, b), tie_seed=5)
        assert plan.without_directive(0).directives == (b,)
        assert plan.without_tie_seed().tie_seed is None
        assert not plan.preserves_delivery
        assert plan.without_directive(1).preserves_delivery

    def test_make_fault_plan_applies_directives(self):
        plan = ExplorationPlan(directives=(
            FaultDirective("delay_type", source="A", destination="B",
                           type_name="str", extra=2.0),))
        faults = plan.make_fault_plan()
        assert faults.apply(Envelope("A", "B", "payload"), 0.0) == (True, 2.0)


class TestFaultPlanGenerator:
    def test_pure_in_seed_and_index(self):
        threads = ("T1", "T2", "T3")
        one = FaultPlanGenerator(7, threads)
        two = FaultPlanGenerator(7, threads)
        assert [one.sample(i) for i in range(20)] == \
            [two.sample(i) for i in range(20)]
        # Sampling out of order changes nothing.
        assert one.sample(3) == two.sample(3)

    def test_different_seeds_differ(self):
        threads = ("T1", "T2", "T3")
        a = [FaultPlanGenerator(1, threads).sample(i) for i in range(10)]
        b = [FaultPlanGenerator(2, threads).sample(i) for i in range(10)]
        assert a != b

    def test_default_kinds_preserve_delivery(self):
        generator = FaultPlanGenerator(3, ("T1", "T2"))
        for index in range(50):
            assert generator.sample(index).preserves_delivery

    def test_full_vocabulary_reaches_every_samplable_kind(self):
        from repro.explore.generator import SAMPLABLE_KINDS
        generator = FaultPlanGenerator(11, ("T1", "T2", "T3"),
                                       kinds=SAMPLABLE_KINDS,
                                       max_directives=3)
        seen = {directive.kind
                for index in range(200)
                for directive in generator.sample(index).directives}
        # Crash/restore waves add paired restore directives on top of the
        # samplable kinds.
        assert seen == set(SAMPLABLE_KINDS) | {"restore"}

    def test_restore_is_not_samplable(self):
        with pytest.raises(ValueError, match="unknown directive kinds"):
            FaultPlanGenerator(0, ("T1", "T2"), kinds=("restore",))

    def test_crash_restore_waves_are_well_formed(self):
        """Every sampled restore follows its node's crash, strictly later."""
        generator = FaultPlanGenerator(7, ("T1", "T2", "T3"),
                                       kinds=("crash",), max_directives=2)
        waves = 0
        for index in range(100):
            plan = generator.sample(index)
            for position, directive in enumerate(plan.directives):
                if directive.kind != "restore":
                    continue
                waves += 1
                crash = plan.directives[position - 1]
                assert crash.kind == "crash"
                assert crash.node == directive.node
                assert directive.at_time is not None
                assert directive.at_time > (crash.at_time or 0.0)
        assert waves > 0

    def test_restore_probability_zero_disables_waves(self):
        generator = FaultPlanGenerator(7, ("T1", "T2"), kinds=("crash",),
                                       restore_probability=0.0)
        for index in range(50):
            assert all(d.kind == "crash"
                       for d in generator.sample(index).directives)

    def test_sampled_fields_stay_in_bounds(self):
        generator = FaultPlanGenerator(5, ("T1", "T2"), kinds=DEFAULT_KINDS,
                                       max_directives=2,
                                       delay_range=(0.5, 1.5), max_nth=4)
        for index in range(100):
            plan = generator.sample(index)
            assert 1 <= len(plan.directives) <= 2
            for directive in plan.directives:
                assert directive.source != directive.destination
                assert {directive.source, directive.destination} <= {"T1", "T2"}
                if directive.extra:
                    assert 0.5 <= directive.extra <= 1.5
                if directive.n:
                    assert 1 <= directive.n <= 4
                if directive.kind == "delay_type":
                    assert directive.type_name in DEFAULT_MESSAGE_TYPES

    def test_validation(self):
        with pytest.raises(ValueError, match="at least two threads"):
            FaultPlanGenerator(0, ("T1",))
        with pytest.raises(ValueError, match="unknown directive kinds"):
            FaultPlanGenerator(0, ("T1", "T2"), kinds=("nope",))
        with pytest.raises(ValueError, match="max_directives"):
            FaultPlanGenerator(0, ("T1", "T2"), max_directives=0)
        with pytest.raises(ValueError, match="jitter_probability"):
            FaultPlanGenerator(0, ("T1", "T2"), jitter_probability=1.5)
