"""The oracle catalogue and the invariant monitor."""

import pytest

from repro.core import oracles
from repro.core.oracles import ThreadQuiescence
from repro.core.state import ThreadState
from repro.explore import ExplorationPlan, InvariantMonitor, run_case
from repro.explore.targets import get_target
from repro.net.faults import FaultDirective


def _quiet(thread="T1", **overrides):
    base = dict(thread=thread, program_finished=True, status="idle",
                coordinator_state=ThreadState.NORMAL, pending_abort=False,
                pending_abort_target=None, retained_messages=0,
                stack_depth=0)
    base.update(overrides)
    return ThreadQuiescence(**base)


class TestOraclePredicates:
    def test_agreement_holds_on_identical_resolutions(self):
        resolutions = {("A", "A#1"): [("T1", "e"), ("T2", "e"), ("T3", "e")]}
        assert oracles.check_agreement(resolutions) == []

    def test_agreement_flags_divergence(self):
        resolutions = {("A", "A#1"): [("T1", "e1"), ("T2", "e2")]}
        violations = oracles.check_agreement(resolutions)
        assert len(violations) == 1
        assert violations[0].invariant == oracles.AGREEMENT
        assert "T1:e1" in violations[0].detail

    def test_agreement_flags_duplicate_identical_deliveries(self):
        # The resolver commits exactly once per instance: two deliveries
        # to one thread are a protocol violation even when they announce
        # the same exception.
        resolutions = {("A", "A#1"): [("T1", "e"), ("T1", "e"), ("T2", "e")]}
        violations = oracles.check_agreement(resolutions)
        assert len(violations) == 1
        assert "2 resolutions to T1" in violations[0].detail

    def test_exactly_one_outcome(self):
        assert oracles.check_exactly_one_outcome(
            {("A", "A#1", "T1"): 1}) == []
        violations = oracles.check_exactly_one_outcome(
            {("A", "A#1", "T1"): 2})
        assert violations[0].invariant == oracles.EXACTLY_ONE_OUTCOME

    def test_lost_conclusion_is_a_liveness_violation(self):
        # Entered but never concluded: flagged when completion is owed,
        # waived for assumption-violating plans.
        lost = {("A", "A#1", "T1"): 0}
        violations = oracles.check_exactly_one_outcome(lost)
        assert "0 times" in violations[0].detail
        assert oracles.check_exactly_one_outcome(
            lost, require_completion=False) == []
        # Duplicates stay violations even when completion is waived.
        assert oracles.check_exactly_one_outcome(
            {("A", "A#1", "T1"): 2}, require_completion=False)

    def test_no_stranded_thread(self):
        assert oracles.check_no_stranded_thread([_quiet()]) == []
        stranded = _quiet(program_finished=False,
                          status="awaiting_resolution", stack_depth=1)
        violations = oracles.check_no_stranded_thread([stranded])
        assert violations[0].invariant == oracles.NO_STRANDED_THREAD
        assert "program never finished" in violations[0].detail

    def test_retained_message_counts_as_stranded(self):
        violations = oracles.check_no_stranded_thread(
            [_quiet(retained_messages=1)])
        assert "retained" in violations[0].detail

    def test_abortion_atomic(self):
        assert oracles.check_abortion_atomic([_quiet()]) == []
        violations = oracles.check_abortion_atomic(
            [_quiet(pending_abort_target="Outer")])
        assert violations[0].invariant == oracles.ABORTION_ATOMIC

    def test_differential_agreement(self):
        ours = {"A#1/T1": "e"}
        assert oracles.check_differential_agreement(
            ours, {"A#1/T1": "e"}, "ours", "cr") == []
        violations = oracles.check_differential_agreement(
            ours, {"A#1/T1": "other"}, "ours", "cr")
        assert violations[0].invariant == oracles.DIFFERENTIAL_AGREEMENT
        missing = oracles.check_differential_agreement(ours, {}, "ours", "cr")
        assert len(missing) == 1


class TestInvariantMonitor:
    def test_clean_run_upholds_every_invariant(self):
        system = get_target("nested_abort").build(
            ExplorationPlan().make_fault_plan())
        monitor = InvariantMonitor(system)
        system.run()
        assert monitor.check(require_liveness=True) == []
        # The monitor actually saw the run: Outer resolved on all threads.
        assert any(action == "Outer"
                   for action, _ in monitor.resolutions)
        assert all(count == 1 for count in monitor.outcomes.values())

    def test_monitor_sees_agreed_resolution_per_instance(self):
        system = get_target("concurrent_raises").build(
            ExplorationPlan().make_fault_plan())
        monitor = InvariantMonitor(system)
        system.run()
        [(key, seen)] = list(monitor.resolutions.items())
        assert key[0] == "Concurrent"
        assert {thread for thread, _ in seen} == {"T1", "T2", "T3"}
        assert len({name for _, name in seen}) == 1


class TestRunCaseConditioning:
    def test_crash_plan_is_not_held_to_liveness(self):
        # Crashing T3 outright strands the protocol — the paper says the
        # resolution algorithm does not tolerate crashes — so the oracle
        # catalogue must not call that a violation.
        plan = ExplorationPlan(directives=(
            FaultDirective("crash", node="T3"),))
        result = run_case("concurrent_raises", plan)
        assert not plan.preserves_delivery
        assert result.violations == []
        assert not result.completed

    def test_delivery_preserving_plan_is_held_to_liveness(self):
        plan = ExplorationPlan(directives=(
            FaultDirective("delay_link", source="T1", destination="T2",
                           extra=2.0),))
        assert plan.preserves_delivery
        result = run_case("concurrent_raises", plan)
        assert result.violations == []
        assert result.completed

    def test_differential_baselines_agree_on_clean_plan(self):
        result = run_case("concurrent_raises", ExplorationPlan(),
                          baselines=("campbell-randell", "romanovsky96"))
        assert result.violations == []
