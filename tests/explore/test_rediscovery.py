"""Acceptance: the explorer rediscovers the lost-Commit race mechanically.

PR 2 fixed a deadlock that was found by *hand-crafting* one fault plan
(delay the Inner ``Commit`` into T3's abortion window).  These tests
locally revert the fix — restoring the pre-PR2 ``_receive_commit``
behaviour — and show that a fixed-seed explorer budget rediscovers the
deadlock through the ``no_stranded_thread`` oracle alone, and that the
shrinker reduces the failing plan to a single-directive reproducer.  With
the fix in place, the same budget passes clean
(``test_explore_budget.py`` sweeps the full budget; the shrunk plan is
re-checked here).
"""

import pytest

from repro.core import effects as fx
from repro.core.oracles import EXACTLY_ONE_OUTCOME, NO_STRANDED_THREAD
from repro.core.resolution import ResolutionCoordinator
from repro.explore import Explorer, run_case, shrink_plan, to_pytest_source

#: Fixed seed and budget of the acceptance criterion (≤ 500 plans).
SEED = 2026
BUDGET = 500


def _legacy_receive_commit(self, message):
    """The pre-PR2 Commit handling (the lost-Commit race).

    A Commit for a non-active action was dropped outright, and a Commit
    for the active action was obeyed even while that action was being
    aborted — wiping ``LEi`` and with it the record of the enclosing
    exception the abortion was resolving.
    """
    context = self.active_context()
    if context is None or context.action != message.action:
        self._trace(f"ignore Commit for {message.action}")
        return [fx.LogEvent(f"{self.thread_id} ignored Commit for "
                            f"{message.action}")]
    self.le.clear()
    self.handling[message.action] = message.exception
    self._trace(f"commit {message.exception.name} in {message.action}")
    return [fx.HandleResolved(message.action, message.exception,
                              resolver=message.resolver)]


@pytest.fixture
def lost_commit_bug(monkeypatch):
    """Locally revert the PR 2 fix for the duration of one test."""
    monkeypatch.setattr(ResolutionCoordinator, "_receive_commit",
                        _legacy_receive_commit)


class TestRediscovery:
    def test_budget_rediscovers_the_deadlock(self, lost_commit_bug):
        explorer = Explorer(target="nested_abort", seed=SEED, budget=BUDGET,
                            stop_on_first_failure=True)
        report = explorer.run()
        assert report.failures, \
            f"no failure found in {BUDGET} plans of seed {SEED}"
        first = report.failures[0]
        # Found through the no-stranded-thread oracle, as a true deadlock
        # (programs never finished), well inside the budget.
        assert first.index < BUDGET
        assert not first.completed
        invariants = {v.invariant for v in first.violations}
        # The deadlock surfaces through the no-stranded-thread oracle (and,
        # since the stranded participations were entered but never
        # concluded, the lost-conclusion half of exactly-one-outcome too).
        assert NO_STRANDED_THREAD in invariants
        assert invariants <= {NO_STRANDED_THREAD, EXACTLY_ONE_OUTCOME}
        assert any("program never finished" in v.detail
                   for v in first.violations)

    def test_corpus_search_rediscovers_in_fewer_runs(self, lost_commit_bug):
        # The acceptance bar: enumeration at seed 2026 first hits the
        # race at plan 11 (12 executed runs); corpus search must get
        # there strictly faster.  It does — its deterministic neighbour
        # sweep retargets bootstrap plan 0's delay onto the T1->T2 link,
        # which lands in the failure window on the sixth executed run.
        from repro.explore import CorpusSearch
        search = CorpusSearch(target="nested_abort", seed=SEED,
                              generation_size=5, chunk_size=5, shrink=True)
        report = search.run(budget=60, stop_on_first_failure=True)
        assert report.first_failure_at is not None
        assert report.first_failure_at < 11
        # The violation was novel, so the search auto-shrunk it into a
        # ready-to-paste reproducer whose reduced plan still fails.
        assert report.reproducers
        from repro.explore import ExplorationPlan
        reduced = ExplorationPlan.from_dict(report.reproducers[0]["reduced"])
        assert len(reduced) == 1
        assert run_case("nested_abort", reduced).violations

    def test_shrinker_reduces_to_one_directive(self, lost_commit_bug):
        explorer = Explorer(target="nested_abort", seed=SEED, budget=BUDGET,
                            stop_on_first_failure=True)
        report = explorer.run()
        first = report.failures[0]
        result = shrink_plan(first.plan, explorer.predicate())
        # Truly minimal: one directive, no schedule perturbation left.
        assert len(result.reduced) == 1
        assert result.reduced.tie_seed is None
        assert result.violations, "the reduced plan must still fail"
        # The reproducer is self-contained: rebuild it from its dict form
        # and it still triggers the deadlock.
        from repro.explore import ExplorationPlan
        rebuilt = ExplorationPlan.from_dict(result.reduced.to_dict())
        assert run_case("nested_abort", rebuilt).violations

    def test_emitted_pytest_regression_is_executable(self, lost_commit_bug,
                                                     tmp_path):
        explorer = Explorer(target="nested_abort", seed=SEED, budget=BUDGET,
                            stop_on_first_failure=True)
        first = explorer.run().failures[0]
        result = shrink_plan(first.plan, explorer.predicate())
        source = to_pytest_source("nested_abort", result.reduced,
                                  result.violations)
        # The generated module compiles and, executed under the reverted
        # fix, its test fails (it is a regression for the bug).
        module = {}
        exec(compile(source, "generated_regression.py", "exec"), module)
        with pytest.raises(AssertionError, match="invariant violations"):
            module["test_explored_fault_plan"]()

    def test_shrunk_plan_passes_with_the_fix_in_place(self):
        # Run the canonical hand-shrunk reproducer (delay the Inner Commit
        # into the abortion window) against the fixed coordinator: clean.
        from repro.explore import ExplorationPlan
        from repro.net.faults import FaultDirective
        plan = ExplorationPlan(directives=(
            FaultDirective("delay_type", source="T2", destination="T3",
                           type_name="CommitMessage", extra=3.0),))
        result = run_case("nested_abort", plan)
        assert result.violations == []
        assert result.completed


class TestShrinkerMechanics:
    def test_refuses_to_shrink_a_passing_plan(self):
        from repro.explore import ExplorationPlan
        with pytest.raises(ValueError, match="does not fail"):
            shrink_plan(ExplorationPlan(), lambda plan: [])

    def test_removes_noise_directives(self):
        from repro.explore import ExplorationPlan
        from repro.net.faults import FaultDirective
        culprit = FaultDirective("delay_type", source="T2", destination="T3",
                                 type_name="CommitMessage", extra=3.0)
        noise = FaultDirective("delay_link", source="T1", destination="T3",
                               extra=0.4)

        def predicate(plan):
            # Fails iff the culprit is present.
            return (["fail"] if culprit in plan.directives else [])

        plan = ExplorationPlan(directives=(noise, culprit, noise), tie_seed=8)
        result = shrink_plan(plan, predicate)
        assert result.reduced.tie_seed is None
        assert [d.kind for d in result.reduced.directives] == ["delay_type"]
        assert result.removed_directives == 2

    def test_halves_delay_magnitudes_while_failing(self):
        from repro.explore import ExplorationPlan
        from repro.net.faults import FaultDirective
        directive = FaultDirective("delay_link", source="A", destination="B",
                                   extra=8.0)

        def predicate(plan):
            return (["fail"] if plan.directives
                    and plan.directives[0].extra >= 2.0 else [])

        result = shrink_plan(ExplorationPlan(directives=(directive,)),
                             predicate)
        assert result.reduced.directives[0].extra == 2.0

    def test_normalises_a_required_tie_seed_to_the_smallest(self):
        from repro.explore import ExplorationPlan
        from repro.net.faults import FaultDirective
        directive = FaultDirective("delay_link", source="A", destination="B",
                                   extra=1.0)

        def predicate(plan):
            # Any schedule perturbation reproduces; none at all does not.
            return (["fail"] if plan.directives
                    and plan.tie_seed is not None else [])

        plan = ExplorationPlan(directives=(directive,), tie_seed=536549379)
        result = shrink_plan(plan, predicate)
        assert result.reduced.tie_seed == 0

    def test_simplifies_per_nth_delay_to_per_type(self):
        from repro.explore import ExplorationPlan
        from repro.net.faults import FaultDirective

        def delays_commit(directive):
            on_link = (directive.source, directive.destination) == ("T2", "T3")
            return on_link and (
                (directive.kind == "delay_nth" and directive.n == 3)
                or (directive.kind == "delay_type"
                    and directive.type_name == "CommitMessage"))

        def predicate(plan):
            # Fails iff the Commit on T2->T3 is delayed — by ordinal or
            # by type; the per-type form is the one worth keeping.
            return (["fail"] if any(delays_commit(d) for d in plan.directives)
                    else [])

        plan = ExplorationPlan(directives=(
            FaultDirective("delay_nth", source="T2", destination="T3",
                           n=3, extra=3.0),))
        result = shrink_plan(plan, predicate)
        reduced = result.reduced.directives[0]
        assert reduced.kind == "delay_type"
        assert reduced.type_name == "CommitMessage"

    def test_simplifies_timed_crash_to_immediate(self):
        from repro.explore import ExplorationPlan
        from repro.net.faults import FaultDirective

        def predicate(plan):
            return (["fail"] if any(d.kind == "crash" and d.node == "T1"
                                    for d in plan.directives) else [])

        plan = ExplorationPlan(directives=(
            FaultDirective("crash", node="T1", at_time=2.5),))
        result = shrink_plan(plan, predicate)
        assert result.reduced.directives[0].at_time is None
