"""Regression: the network's envelope trace must not grow without bound.

The trace used to be an unbounded list appended to on every send, which
made long capacity sweeps grow linearly in memory for a debugging aid
nobody was reading.  It is now a bounded ring by default; consumers that
genuinely need every envelope (canonical replay traces) opt in with
``keep_trace=True`` and the digest path refuses to run on an overflowed
ring rather than producing a silently wrong digest.
"""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.simkernel.kernel import Kernel


def build_network(**kwargs):
    kernel = Kernel()
    network = Network(kernel, latency=ConstantLatency(0.0), **kwargs)
    network.add_node("a")
    network.add_node("b")
    return kernel, network


class TestBoundedDefault:
    def test_long_run_memory_is_flat(self):
        _kernel, network = build_network()
        total = Network.TRACE_CAPACITY * 3
        for _ in range(total):
            network.send("a", "b", "ping")
        assert len(network.trace) == Network.TRACE_CAPACITY
        assert network.stats.sent == total  # counters still see everything

    def test_ring_keeps_the_most_recent_envelopes(self):
        kernel, network = build_network()
        for i in range(Network.TRACE_CAPACITY + 10):
            network.send("a", "b", i)
        payloads = [env.payload for env in network.trace]
        assert payloads[0] == 10
        assert payloads[-1] == Network.TRACE_CAPACITY + 9

    def test_short_runs_are_unaffected(self):
        _kernel, network = build_network()
        for i in range(5):
            network.send("a", "b", i)
        assert [env.payload for env in network.trace] == [0, 1, 2, 3, 4]


class TestOptInRetention:
    def test_keep_trace_retains_every_envelope(self):
        _kernel, network = build_network(keep_trace=True)
        total = Network.TRACE_CAPACITY + 100
        for _ in range(total):
            network.send("a", "b", "ping")
        assert len(network.trace) == total

    def test_canonical_trace_refuses_an_overflowed_ring(self):
        from repro.explore.trace import canonical_trace

        _kernel, network = build_network()
        for _ in range(Network.TRACE_CAPACITY + 1):
            network.send("a", "b", "ping")

        class _System:  # canonical_trace touches network + partitions only
            pass

        system = _System()
        system.network = network
        system.partitions = {}
        with pytest.raises(RuntimeError, match="keep_trace"):
            canonical_trace(system)

    def test_canonical_trace_accepts_a_full_retained_trace(self):
        from repro.explore.trace import canonical_trace

        _kernel, network = build_network(keep_trace=True)
        for _ in range(10):
            network.send("a", "b", "ping")

        class _System:
            pass

        system = _System()
        system.network = network
        system.partitions = {}
        text = canonical_trace(system)
        assert text.count("deliver=") == 10
