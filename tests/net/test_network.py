"""Tests for the message-passing substrate: network, nodes, latency, faults, RPC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    ConstantLatency,
    FaultPlan,
    Network,
    PerLinkLatency,
    RpcEndpoint,
    TruncatedExponentialLatency,
    UniformLatency,
    UnknownNodeError,
)
from repro.simkernel import Kernel, SeededStreams


def make_network(latency=None, faults=None):
    kernel = Kernel()
    network = Network(kernel, latency=latency, faults=faults)
    a = network.add_node("A")
    b = network.add_node("B")
    return kernel, network, a, b


def drain(node, count):
    """Process that receives ``count`` envelopes from a node's inbox."""
    received = []

    def consumer(kernel, node):
        for _ in range(count):
            envelope = yield node.inbox.get()
            received.append((kernel.now, envelope.payload))

    node.kernel.process(consumer(node.kernel, node))
    return received


# ----------------------------------------------------------------------
# Basic delivery
# ----------------------------------------------------------------------
class TestDelivery:
    def test_message_arrives_after_latency(self):
        kernel, network, a, b = make_network(ConstantLatency(0.5))
        received = drain(b, 1)
        a.send("B", "hello")
        kernel.run()
        assert received == [(0.5, "hello")]

    def test_zero_latency_default(self):
        kernel, network, a, b = make_network()
        received = drain(b, 1)
        a.send("B", "now")
        kernel.run()
        assert received == [(0.0, "now")]

    def test_unknown_destination_raises(self):
        kernel, network, a, b = make_network()
        with pytest.raises(UnknownNodeError):
            a.send("Z", "lost")

    def test_unknown_source_raises(self):
        kernel, network, a, b = make_network()
        with pytest.raises(UnknownNodeError):
            network.send("Z", "A", "lost")

    def test_duplicate_node_name_rejected(self):
        kernel, network, a, b = make_network()
        with pytest.raises(ValueError):
            network.add_node("A")

    def test_node_lookup_and_contains(self):
        kernel, network, a, b = make_network()
        assert network.node("A") is a
        assert "B" in network and "Z" not in network
        with pytest.raises(UnknownNodeError):
            network.node("Z")

    def test_broadcast_skips_sender(self):
        kernel, network, a, b = make_network()
        c = network.add_node("C")
        envelopes = network.broadcast("A", ["A", "B", "C"], "ping")
        assert len(envelopes) == 2
        assert {e.destination for e in envelopes} == {"B", "C"}

    def test_crashed_node_does_not_receive(self):
        kernel, network, a, b = make_network()
        b.crash()
        a.send("B", "lost")
        kernel.run()
        assert len(b.inbox) == 0
        assert network.stats.dropped == 1

    def test_recovered_node_receives_again(self):
        kernel, network, a, b = make_network()
        b.crash()
        b.recover()
        received = drain(b, 1)
        a.send("B", "back")
        kernel.run()
        assert received[0][1] == "back"


# ----------------------------------------------------------------------
# FIFO guarantee (Assumption 2)
# ----------------------------------------------------------------------
class TestFifo:
    def test_fifo_with_constant_latency(self):
        kernel, network, a, b = make_network(ConstantLatency(0.2))
        received = drain(b, 5)
        for i in range(5):
            a.send("B", i)
        kernel.run()
        assert [payload for _t, payload in received] == [0, 1, 2, 3, 4]

    def test_fifo_enforced_under_random_latency(self):
        streams = SeededStreams(11)
        kernel, network, a, b = make_network(
            UniformLatency(0.1, 2.0, streams=streams))
        received = drain(b, 20)
        for i in range(20):
            a.send("B", i)
        kernel.run()
        assert [payload for _t, payload in received] == list(range(20))
        times = [t for t, _payload in received]
        assert times == sorted(times)

    @given(count=st.integers(min_value=1, max_value=30),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_property_fifo_for_any_seed(self, count, seed):
        streams = SeededStreams(seed)
        kernel, network, a, b = make_network(
            TruncatedExponentialLatency(0.5, 3.0, streams=streams))
        received = drain(b, count)
        for i in range(count):
            a.send("B", i)
        kernel.run()
        assert [payload for _t, payload in received] == list(range(count))


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
class TestLatencyModels:
    def test_constant_latency_bound(self):
        assert ConstantLatency(1.5).bound() == 1.5

    def test_constant_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_latency_bound_and_range(self):
        model = UniformLatency(0.5, 2.5)
        assert model.bound() == 2.5
        for _ in range(50):
            assert 0.5 <= model.sample("A", "B") <= 2.5

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)

    def test_truncated_exponential_respects_cap(self):
        model = TruncatedExponentialLatency(mean=1.0, cap=2.0)
        assert model.bound() == 2.0
        for _ in range(200):
            assert model.sample("A", "B") <= 2.0

    def test_per_link_latency_overrides(self):
        model = PerLinkLatency(default=0.1, overrides={("A", "B"): 1.0})
        assert model.sample("A", "B") == 1.0
        assert model.sample("B", "A") == 0.1
        assert model.bound() == 1.0
        model.set_link("B", "A", 3.0)
        assert model.bound() == 3.0

    def test_per_link_rejects_negative(self):
        with pytest.raises(ValueError):
            PerLinkLatency(default=-0.1)
        with pytest.raises(ValueError):
            PerLinkLatency(default=0.1).set_link("A", "B", -1)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaults:
    def test_surgical_drop(self):
        faults = FaultPlan()
        faults.drop_nth_message("A", "B", 2)
        kernel, network, a, b = make_network(faults=faults)
        received = drain(b, 2)
        for i in range(3):
            a.send("B", i)
        kernel.run()
        assert [payload for _t, payload in received] == [0, 2]
        assert faults.stats.dropped == 1

    def test_surgical_corruption_marks_envelope(self):
        faults = FaultPlan()
        faults.corrupt_nth_message("A", "B", 1)
        kernel, network, a, b = make_network(faults=faults)
        a.send("B", "data")
        kernel.run()
        assert b.received[0].corrupted
        assert faults.stats.corrupted == 1

    def test_probabilistic_drop_all(self):
        faults = FaultPlan(drop_probability=1.0)
        kernel, network, a, b = make_network(faults=faults)
        for i in range(5):
            a.send("B", i)
        kernel.run()
        assert len(b.inbox) == 0
        assert faults.stats.dropped == 5

    def test_crashed_node_in_plan_blocks_messages(self):
        faults = FaultPlan()
        faults.crash_node("B")
        kernel, network, a, b = make_network(faults=faults)
        a.send("B", "x")
        kernel.run()
        assert len(b.inbox) == 0
        assert faults.stats.blocked_by_crash == 1

    def test_timed_crash_only_after_time(self):
        faults = FaultPlan()
        faults.crash_node("B", at_time=1.0)
        assert not faults.is_crashed("B", 0.5)
        assert faults.is_crashed("B", 1.5)

    def test_restore_node(self):
        faults = FaultPlan()
        faults.crash_node("B")
        faults.restore_node("B")
        assert not faults.is_crashed("B", 0.0)

    def test_extra_link_delay(self):
        faults = FaultPlan()
        faults.add_link_delay("A", "B", 1.0)
        kernel, network, a, b = make_network(ConstantLatency(0.5),
                                             faults=faults)
        received = drain(b, 1)
        a.send("B", "slow")
        kernel.run()
        assert received[0][0] == pytest.approx(1.5)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=-0.1)

    def test_invalid_nth_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().drop_nth_message("A", "B", 0)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
class TestStatistics:
    def test_counters_track_sent_and_delivered(self):
        kernel, network, a, b = make_network()
        for i in range(4):
            a.send("B", i)
        kernel.run()
        assert network.stats.sent == 4
        assert network.stats.delivered == 4
        assert network.stats.by_type["int"] == 4

    def test_reset_statistics(self):
        kernel, network, a, b = make_network()
        a.send("B", 1)
        kernel.run()
        network.reset_statistics()
        assert network.stats.sent == 0

    def test_snapshot_is_plain_dict(self):
        kernel, network, a, b = make_network()
        a.send("B", "x")
        snapshot = network.stats.snapshot()
        assert snapshot["sent"] == 1
        assert isinstance(snapshot["by_type"], dict)

    def test_per_link_counters_track_directed_links(self):
        kernel, network, a, b = make_network()
        c = network.add_node("C")
        for _ in range(3):
            a.send("B", "x")
        b.send("A", "y")
        a.send("C", "z")
        kernel.run()
        assert network.stats.by_link[("A", "B")] == 3
        assert network.stats.by_link[("B", "A")] == 1
        assert network.stats.by_link[("A", "C")] == 1
        assert ("C", "A") not in network.stats.by_link

    def test_per_link_counters_include_dropped_messages(self):
        faults = FaultPlan()
        faults.drop_nth_message("A", "B", 1)
        kernel, network, a, b = make_network(faults=faults)
        a.send("B", "lost")
        kernel.run()
        # Sending is counted per link even when the fault plan drops it.
        assert network.stats.by_link[("A", "B")] == 1
        assert network.stats.dropped == 1

    def test_reset_clears_every_counter(self):
        kernel, network, a, b = make_network()
        a.send("B", 1)
        kernel.run()
        network.stats.reset()
        assert network.stats.sent == 0
        assert network.stats.delivered == 0
        assert dict(network.stats.by_type) == {}
        assert dict(network.stats.by_link) == {}

    def test_snapshot_restore_roundtrip(self):
        kernel, network, a, b = make_network()
        for i in range(3):
            a.send("B", i)
        kernel.run()
        snapshot = network.stats.snapshot()
        network.stats.reset()
        network.stats.restore(snapshot)
        assert network.stats.snapshot() == snapshot
        assert network.stats.by_link[("A", "B")] == 3

    def test_snapshot_is_isolated_from_later_traffic(self):
        kernel, network, a, b = make_network()
        a.send("B", 1)
        snapshot = network.stats.snapshot()
        a.send("B", 2)
        assert snapshot["sent"] == 1
        assert snapshot["by_link"]["A->B"] == 1

    def test_snapshot_json_roundtrip(self):
        # Snapshots must be JSON-serializable (benchmark rows embed them in
        # BENCH_*.json files), and restore() must accept the decoded form.
        import json

        kernel, network, a, b = make_network()
        for i in range(3):
            a.send("B", i)
        b.send("A", "reply")
        kernel.run()
        snapshot = network.stats.snapshot()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded == snapshot
        network.stats.reset()
        network.stats.restore(decoded)
        assert network.stats.by_link[("A", "B")] == 3
        assert network.stats.by_link[("B", "A")] == 1
        assert network.stats.snapshot() == snapshot

    def test_merge_accepts_tuple_and_string_link_keys(self):
        kernel, network, a, b = make_network()
        network.stats.merge({"by_link": {("A", "B"): 2}})
        network.stats.merge({"by_link": {"A->B": 3, "B->A": 1}})
        assert network.stats.by_link[("A", "B")] == 5
        assert network.stats.by_link[("B", "A")] == 1

    def test_merge_aggregates_parallel_run_snapshots(self):
        kernel, network, a, b = make_network()
        a.send("B", 1)
        kernel.run()
        other = {"sent": 5, "delivered": 4, "dropped": 1,
                 "by_type": {"int": 5}, "by_link": {("A", "B"): 2,
                                                    ("B", "A"): 3}}
        network.stats.merge(other)
        assert network.stats.sent == 6
        assert network.stats.delivered == 5
        assert network.stats.dropped == 1
        assert network.stats.by_type["int"] == 6
        assert network.stats.by_link[("A", "B")] == 3
        assert network.stats.by_link[("B", "A")] == 3


# ----------------------------------------------------------------------
# Fault-plan drops interacting with the FIFO clamp
# ----------------------------------------------------------------------
class TestDropsAndFifo:
    def test_fifo_preserved_around_surgical_drops_under_random_latency(self):
        faults = FaultPlan()
        faults.drop_nth_message("A", "B", 3)
        faults.drop_nth_message("A", "B", 7)
        streams = SeededStreams(7)
        kernel, network, a, b = make_network(
            UniformLatency(0.1, 2.0, streams=streams), faults=faults)
        received = drain(b, 10)
        for i in range(12):
            a.send("B", i)
        kernel.run()
        expected = [i for i in range(12) if i not in (2, 6)][:10]
        assert [payload for _t, payload in received] == expected
        times = [t for t, _payload in received]
        assert times == sorted(times)
        assert faults.stats.dropped == 2

    def test_dropped_message_does_not_advance_the_link_clock(self):
        # A dropped message is never scheduled, so it must not clamp the
        # delivery time of later messages on the same link.
        faults = FaultPlan()
        faults.add_link_delay("A", "B", 10.0)
        faults.drop_nth_message("A", "B", 1)
        kernel, network, a, b = make_network(ConstantLatency(0.5),
                                             faults=faults)
        received = drain(b, 1)
        a.send("B", "dropped-slow")        # would arrive at 10.5 if delivered
        faults.add_link_delay("A", "B", 0.0)   # later messages: no extra delay
        a.send("B", "fast")
        kernel.run()
        assert received == [(0.5, "fast")]

    def test_fault_delay_feeds_the_fifo_clamp(self):
        # The first message gets a 2s fault delay; the second, sent later
        # without extra delay, would overtake it and must be clamped.
        faults = FaultPlan()
        faults.add_link_delay("A", "B", 2.0)
        kernel, network, a, b = make_network(ConstantLatency(0.5),
                                             faults=faults)
        received = drain(b, 2)

        def sender(kernel):
            a.send("B", "first")           # arrives at 2.5
            yield kernel.timeout(1.0)
            faults.add_link_delay("A", "B", 0.0)
            a.send("B", "second")          # would arrive at 1.5 -> clamped
        kernel.process(sender(kernel))
        kernel.run()
        assert [payload for _t, payload in received] == ["first", "second"]
        assert received[0][0] == pytest.approx(2.5)
        assert received[1][0] == pytest.approx(2.5)


# ----------------------------------------------------------------------
# RPC
# ----------------------------------------------------------------------
class TestRpc:
    def test_oneway_call_invokes_remote_procedure(self):
        kernel, network, a, b = make_network(ConstantLatency(0.1))
        calls = []
        server = RpcEndpoint(b, network)
        server.register("log", lambda message: calls.append(message))
        client = RpcEndpoint(a, network)
        client.call_oneway("B", "log", "hello")
        kernel.run()
        assert calls == ["hello"]

    def test_request_reply_returns_value(self):
        kernel, network, a, b = make_network(ConstantLatency(0.1))
        server = RpcEndpoint(b, network)
        server.register("add", lambda x, y: x + y)
        client = RpcEndpoint(a, network)
        results = []

        def caller(kernel, client):
            results.append((yield client.call("B", "add", 2, 3)))

        kernel.process(caller(kernel, client))
        kernel.run()
        assert results == [5]

    def test_remote_error_propagates(self):
        kernel, network, a, b = make_network()
        server = RpcEndpoint(b, network)

        def boom():
            raise ValueError("remote failure")
        server.register("boom", boom)
        client = RpcEndpoint(a, network)
        errors = []

        def caller(kernel, client):
            try:
                yield client.call("B", "boom")
            except RuntimeError as error:
                errors.append(str(error))

        kernel.process(caller(kernel, client))
        kernel.run()
        assert errors and "remote failure" in errors[0]

    def test_unknown_procedure_returns_error(self):
        kernel, network, a, b = make_network()
        RpcEndpoint(b, network)
        client = RpcEndpoint(a, network)
        errors = []

        def caller(kernel, client):
            try:
                yield client.call("B", "missing")
            except RuntimeError as error:
                errors.append(str(error))

        kernel.process(caller(kernel, client))
        kernel.run()
        assert errors and "unknown procedure" in errors[0]

    def test_duplicate_registration_rejected(self):
        kernel, network, a, b = make_network()
        server = RpcEndpoint(b, network)
        server.register("x", lambda: 1)
        with pytest.raises(ValueError):
            server.register("x", lambda: 2)

    def test_fallback_receives_non_rpc_payloads(self):
        kernel, network, a, b = make_network()
        fallback_payloads = []
        RpcEndpoint(b, network,
                    fallback=lambda envelope: fallback_payloads.append(
                        envelope.payload))
        a.send("B", {"kind": "custom"})
        kernel.run()
        assert fallback_payloads == [{"kind": "custom"}]
