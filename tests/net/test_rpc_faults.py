"""RPC behaviour under message loss, dead targets and timeouts.

The matrix the PR's bugfix pins down: a request or reply envelope lost to
a fault plan (or a dead destination) must fail a timed call with
:class:`RpcTimeoutError` and clean up the pending-reply entry instead of
hanging the caller forever, and a reply that arrives *after* the timeout
must be ignored, not crash the run.
"""

from __future__ import annotations

import logging

import pytest

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.rpc import RpcEndpoint, RpcReply, RpcTimeoutError
from repro.simkernel.kernel import Kernel


def build_pair(latency: float = 0.1, faults: FaultPlan = None):
    kernel = Kernel()
    network = Network(kernel, latency=ConstantLatency(latency), faults=faults)
    alpha = RpcEndpoint(network.add_node("alpha"), network)
    beta = RpcEndpoint(network.add_node("beta"), network)
    return kernel, network, alpha, beta


def run_timed_call(kernel, alpha, timeout, destination="beta",
                   procedure="echo"):
    outcome = {}

    def program():
        try:
            outcome["value"] = yield alpha.call(destination, procedure, 1,
                                                timeout=timeout)
        except RpcTimeoutError as error:
            outcome["timeout"] = str(error)
        except RuntimeError as error:
            outcome["error"] = str(error)

    kernel.process(program())
    kernel.run()
    return outcome


class TestDroppedTraffic:
    def test_dropped_request_times_out_and_cleans_pending(self):
        faults = FaultPlan()
        faults.drop_nth_message("alpha", "beta", 1)
        kernel, _network, alpha, beta = build_pair(faults=faults)
        beta.register("echo", lambda v: v)
        outcome = run_timed_call(kernel, alpha, timeout=1.0)
        assert "timeout" in outcome and "value" not in outcome
        assert alpha._pending_replies == {}
        assert kernel.now == pytest.approx(1.0)

    def test_dropped_reply_times_out_and_cleans_pending(self):
        faults = FaultPlan()
        faults.drop_nth_message("beta", "alpha", 1)
        kernel, _network, alpha, beta = build_pair(faults=faults)
        beta.register("echo", lambda v: v)
        outcome = run_timed_call(kernel, alpha, timeout=1.0)
        assert "timeout" in outcome
        assert alpha._pending_replies == {}

    def test_dead_target_times_out(self):
        kernel, network, alpha, _beta = build_pair()
        network.node("beta").crash()
        outcome = run_timed_call(kernel, alpha, timeout=0.5)
        assert "timeout" in outcome
        assert alpha._pending_replies == {}

    def test_late_reply_after_timeout_is_ignored(self):
        # The reply takes 2.0 on the return link; the caller gives up at
        # 0.5.  The late reply must neither crash nor fire the dead event.
        faults = FaultPlan()
        faults.delay_message_type("beta", "alpha", "RpcReply", 2.0)
        kernel, _network, alpha, beta = build_pair(faults=faults)
        beta.register("echo", lambda v: v)
        outcome = run_timed_call(kernel, alpha, timeout=0.5)
        kernel.run()  # drain the late reply's delivery
        assert "timeout" in outcome and "value" not in outcome
        assert alpha._pending_replies == {}

    def test_reply_in_time_unaffected_by_timeout_machinery(self):
        kernel, _network, alpha, beta = build_pair()
        beta.register("echo", lambda v: v * 2)
        outcome = run_timed_call(kernel, alpha, timeout=5.0)
        assert outcome == {"value": 2}
        assert alpha._pending_replies == {}

    def test_without_timeout_dropped_reply_hangs_quietly(self):
        # Documented legacy shape: no timeout means the caller waits
        # forever; the run simply ends with the program still pending.
        faults = FaultPlan()
        faults.drop_nth_message("beta", "alpha", 1)
        kernel, _network, alpha, beta = build_pair(faults=faults)
        beta.register("echo", lambda v: v)
        finished = []

        def program():
            finished.append((yield alpha.call("beta", "echo", 1)))

        kernel.process(program())
        kernel.run()
        assert finished == []
        assert len(alpha._pending_replies) == 1  # the leak, now opt-out only

    def test_unsolicited_reply_still_ignored(self):
        kernel, network, _alpha, _beta = build_pair()
        network.send("beta", "alpha", RpcReply(call_id=424242, value="?"))
        kernel.run()  # must not raise


class TestDeferredReplies:
    def test_handler_may_defer_its_reply_via_event(self):
        kernel, _network, alpha, beta = build_pair()
        grant = {}

        def acquire():
            grant["event"] = beta.kernel.event()
            return grant["event"]

        beta.register("acquire", acquire)
        outcome = {}

        def caller():
            outcome["value"] = yield alpha.call("beta", "acquire")

        def granter():
            yield kernel.timeout(3.0)
            grant["event"].succeed("granted")

        kernel.process(caller())
        kernel.process(granter())
        kernel.run()
        assert outcome == {"value": "granted"}
        assert kernel.now == pytest.approx(3.1)  # grant at 3.0 + reply 0.1

    def test_deferred_failure_becomes_remote_error(self):
        kernel, _network, alpha, beta = build_pair()
        pending = {}

        def acquire():
            pending["event"] = beta.kernel.event()
            return pending["event"]

        beta.register("acquire", acquire)
        outcome = {}

        def caller():
            try:
                yield alpha.call("beta", "acquire")
            except RuntimeError as error:
                outcome["error"] = str(error)

        def failer():
            yield kernel.timeout(1.0)
            pending["event"].fail(ValueError("lost race"))

        kernel.process(caller())
        kernel.process(failer())
        kernel.run()
        assert outcome == {"error": "ValueError: lost race"}


class TestOneWayFailureReporting:
    def test_oneway_handler_failure_is_logged(self, caplog):
        kernel, _network, alpha, beta = build_pair()

        def boom():
            raise ValueError("bad input")

        beta.register("boom", boom)
        with caplog.at_level(logging.WARNING, logger="repro.net.rpc"):
            alpha.call_oneway("beta", "boom")
            kernel.run()
        assert any("one-way RPC" in record.getMessage() and
                   "boom" in record.getMessage()
                   for record in caplog.records)

    def test_oneway_handler_failure_emits_obs_event(self):
        from repro.obs.config import ObsConfig
        from repro.obs.observation import SystemObservation

        kernel = Kernel()
        network = Network(kernel, latency=ConstantLatency(0.1))
        alpha = RpcEndpoint(network.add_node("alpha"), network)
        beta = RpcEndpoint(network.add_node("beta"), network)

        class _System:
            pass

        system = _System()
        system.kernel = kernel
        system.network = network
        network._obs = SystemObservation(system, ObsConfig())

        def fail():
            raise RuntimeError("nope")

        beta.register("fail", fail)
        alpha.call_oneway("beta", "fail")
        kernel.run()
        events = network._obs.events
        failures = [e for e in events if e["kind"] == "rpc.failure"]
        assert len(failures) == 1
        assert failures[0]["procedure"] == "fail"
        assert "RuntimeError" in failures[0]["error"]
