"""Direct unit tests for the asynchronous RPC layer (net/rpc.py)."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.rpc import RpcEndpoint, RpcReply, RpcRequest
from repro.simkernel.kernel import Kernel


def build_pair(latency: float = 0.1):
    kernel = Kernel()
    network = Network(kernel, latency=ConstantLatency(latency))
    alpha = RpcEndpoint(network.add_node("alpha"), network)
    beta = RpcEndpoint(network.add_node("beta"), network)
    return kernel, network, alpha, beta


class TestOneWayCalls:
    def test_oneway_invokes_registered_handler(self):
        kernel, _network, alpha, beta = build_pair()
        calls = []
        beta.register("note", lambda *args, **kwargs: calls.append(
            (args, kwargs)))
        alpha.call_oneway("beta", "note", 1, 2, flag=True)
        kernel.run()
        assert calls == [((1, 2), {"flag": True})]

    def test_oneway_to_unknown_procedure_is_dropped_silently(self):
        kernel, network, alpha, _beta = build_pair()
        alpha.call_oneway("beta", "missing")
        kernel.run()
        # The message was still sent and delivered at the network level.
        assert network.stats.sent == 1
        assert network.stats.delivered == 1

    def test_register_twice_is_an_error_and_unregister_frees_the_name(self):
        _kernel, _network, _alpha, beta = build_pair()
        beta.register("p", lambda: None)
        with pytest.raises(ValueError):
            beta.register("p", lambda: None)
        beta.unregister("p")
        beta.register("p", lambda: 42)  # no error after unregister
        beta.unregister("never-registered")  # idempotent


class TestRequestReply:
    def test_call_returns_reply_value(self):
        kernel, _network, alpha, beta = build_pair()
        beta.register("add", lambda a, b: a + b)
        results = []

        def program():
            value = yield alpha.call("beta", "add", 19, 23)
            results.append(value)

        kernel.process(program())
        kernel.run()
        assert results == [42]
        # Round trip: request there, reply back, both with latency 0.1.
        assert kernel.now == pytest.approx(0.2)

    def test_call_unknown_procedure_fails_with_runtime_error(self):
        kernel, _network, alpha, _beta = build_pair()
        errors = []

        def program():
            try:
                yield alpha.call("beta", "nope")
            except RuntimeError as error:
                errors.append(str(error))

        kernel.process(program())
        kernel.run()
        assert errors == ["unknown procedure 'nope'"]

    def test_handler_exception_becomes_remote_error(self):
        kernel, _network, alpha, beta = build_pair()

        def boom():
            raise ValueError("bad input")

        beta.register("boom", boom)
        errors = []

        def program():
            try:
                yield alpha.call("beta", "boom")
            except RuntimeError as error:
                errors.append(str(error))

        kernel.process(program())
        kernel.run()
        assert errors == ["ValueError: bad input"]

    def test_unsolicited_reply_is_ignored(self):
        kernel, network, _alpha, _beta = build_pair()
        network.send("beta", "alpha", RpcReply(call_id=999_999, value="?"))
        kernel.run()  # must not raise


class TestFallback:
    def test_non_rpc_payload_goes_to_fallback(self):
        kernel = Kernel()
        network = Network(kernel, latency=ConstantLatency(0.0))
        seen = []
        RpcEndpoint(network.add_node("alpha"), network)
        RpcEndpoint(network.add_node("beta"), network,
                    fallback=seen.append)
        network.send("alpha", "beta", {"kind": "app"})
        kernel.run()
        assert len(seen) == 1
        assert seen[0].payload == {"kind": "app"}

    def test_without_fallback_non_rpc_payload_is_dropped(self):
        kernel = Kernel()
        network = Network(kernel, latency=ConstantLatency(0.0))
        RpcEndpoint(network.add_node("alpha"), network)
        RpcEndpoint(network.add_node("beta"), network)
        network.send("alpha", "beta", "plain-string")
        kernel.run()  # silently dropped; statistics still counted it
        assert network.stats.delivered == 1


class TestRequestDataclass:
    def test_endpoint_call_ids_are_unique_and_increasing(self):
        kernel, _network, alpha, beta = build_pair()
        beta.register("p", lambda: None)

        def program():
            yield alpha.call("beta", "p")

        alpha.call_oneway("beta", "p")
        kernel.process(program())
        kernel.run()
        ids = [env.payload.call_id for env in _network.trace
               if isinstance(env.payload, RpcRequest)]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_call_ids_are_per_endpoint_not_process_global(self):
        # Two endpoints built in sequence must both start their call ids
        # at 1: replay determinism may not depend on process history.
        _k1, n1, a1, _b1 = build_pair()
        _k2, n2, a2, _b2 = build_pair()
        a1.call_oneway("beta", "p")
        a2.call_oneway("beta", "p")
        assert n1.trace[0].payload.call_id == 1
        assert n2.trace[0].payload.call_id == 1

    def test_defaults(self):
        request = RpcRequest("p", args=(1,))
        assert request.kwargs == {}
        assert request.call_id == 0
        assert request.reply_to is None
        assert not request.expects_reply
