"""Crash faults and the signalling layer's degradation to ƒ.

Direct coverage for ``FaultPlan.crash_node`` / ``restore_node`` /
``is_crashed`` and the new per-type / per-nth delay hooks, plus the
paper's Section 3.4 extension: "the corrupted message or lost message can
be simply treated as a failure exception" — exercised end-to-end through
the runtime dispatcher and at the signal-coordinator level for crashed
(silent) peers.
"""

import pytest

from repro.core.exceptions import FAILURE, NO_EXCEPTION, internal
from repro.core.signalling import SignalCoordinator, SignalOutcome
from repro.core.state import ActionContext
from repro.core.exception_graph import generate_full_graph
from repro.explore.targets import get_target
from repro.net.faults import FaultPlan
from repro.net.message import Envelope
from repro.runtime.report import ActionStatus


class TestCrashFaults:
    def test_unconditional_crash_is_immediate(self):
        plan = FaultPlan()
        plan.crash_node("B")
        assert plan.is_crashed("B", 0.0)
        assert plan.is_crashed("B", 1000.0)
        assert not plan.is_crashed("A", 0.0)

    def test_timed_crash_boundary_is_inclusive(self):
        plan = FaultPlan()
        plan.crash_node("B", at_time=2.0)
        assert not plan.is_crashed("B", 1.999)
        assert plan.is_crashed("B", 2.0)
        assert plan.is_crashed("B", 2.001)

    def test_restore_clears_both_crash_forms(self):
        plan = FaultPlan()
        plan.crash_node("A")
        plan.crash_node("B", at_time=1.0)
        plan.restore_node("A")
        plan.restore_node("B")
        assert not plan.is_crashed("A", 5.0)
        assert not plan.is_crashed("B", 5.0)

    def test_crashed_source_blocks_sending(self):
        plan = FaultPlan()
        plan.crash_node("A", at_time=1.0)
        before = plan.apply(Envelope("A", "B", "m", send_time=0.5), 0.5)
        assert before == (True, 0.0)
        blocked = plan.apply(Envelope("A", "B", "m", send_time=1.5), 1.5)
        assert blocked == (False, 0.0)
        assert plan.stats.blocked_by_crash == 1

    def test_crashed_destination_blocks_delivery(self):
        plan = FaultPlan()
        plan.crash_node("B")
        assert plan.apply(Envelope("A", "B", "m"), 0.0) == (False, 0.0)
        assert plan.apply(Envelope("B", "A", "m"), 0.0) == (False, 0.0)
        assert plan.stats.blocked_by_crash == 2

    def test_restore_reopens_the_link(self):
        plan = FaultPlan()
        plan.crash_node("B")
        plan.apply(Envelope("A", "B", "m"), 0.0)
        plan.restore_node("B")
        assert plan.apply(Envelope("A", "B", "m"), 1.0) == (True, 0.0)


class TestNewDelayKinds:
    def test_type_delay_only_hits_matching_payloads(self):
        plan = FaultPlan()
        plan.delay_message_type("A", "B", "str", 2.0)
        assert plan.apply(Envelope("A", "B", "text"), 0.0) == (True, 2.0)
        assert plan.apply(Envelope("A", "B", 42), 0.0) == (True, 0.0)
        assert plan.apply(Envelope("B", "A", "text"), 0.0) == (True, 0.0)

    def test_nth_delay_hits_exactly_the_nth_message(self):
        plan = FaultPlan()
        plan.delay_nth_message("A", "B", 2, 1.5)
        assert plan.apply(Envelope("A", "B", "m1"), 0.0) == (True, 0.0)
        assert plan.apply(Envelope("A", "B", "m2"), 0.0) == (True, 1.5)
        assert plan.apply(Envelope("A", "B", "m3"), 0.0) == (True, 0.0)

    def test_delays_compose_and_count_once(self):
        plan = FaultPlan()
        plan.add_link_delay("A", "B", 1.0)
        plan.delay_message_type("A", "B", "str", 2.0)
        plan.delay_nth_message("A", "B", 1, 4.0)
        assert plan.apply(Envelope("A", "B", "text"), 0.0) == (True, 7.0)
        assert plan.stats.delayed == 1

    def test_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.delay_message_type("A", "B", "", 1.0)
        with pytest.raises(ValueError):
            plan.delay_message_type("A", "B", "X", -1.0)
        with pytest.raises(ValueError):
            plan.delay_nth_message("A", "B", 0, 1.0)


class TestSignallingDegradesToFailure:
    def _coordinator(self, thread="T1"):
        graph = generate_full_graph([internal("e")], action_name="A")
        context = ActionContext("A", ("T1", "T2", "T3"), graph)
        return SignalCoordinator(thread, context)

    def test_crashed_peer_silence_becomes_failure(self):
        coordinator = self._coordinator()
        coordinator.propose(NO_EXCEPTION)
        coordinator.peer_failed("T2")
        effects = coordinator.peer_failed("T3")
        outcomes = [e for e in effects if isinstance(e, SignalOutcome)]
        assert coordinator.decided == FAILURE
        assert outcomes and outcomes[0].exception == FAILURE

    def test_single_crashed_peer_forces_failure_for_all(self):
        from repro.core.messages import ToBeSignalledMessage
        coordinator = self._coordinator()
        coordinator.propose(internal("eps"))
        coordinator.receive(ToBeSignalledMessage("A", "T2", internal("eps")))
        coordinator.peer_failed("T3")
        assert coordinator.decided == FAILURE

    def test_corrupted_signalling_message_forces_failure_end_to_end(self):
        # Corrupt every message: the resolution messages are delivered
        # as-is (Assumption 1 is their fault model), but each corrupted
        # toBeSignalled proposal is recorded as ƒ — so every thread
        # signals ƒ and every participation ends FAILED.
        faults = FaultPlan(corrupt_probability=1.0)
        system = get_target("concurrent_raises").build(faults)
        reports = system.run_to_completion()
        assert [r.status for r in reports] == [ActionStatus.FAILED] * 3
        assert all(r.signalled == FAILURE for r in reports)
        assert faults.stats.corrupted > 0
