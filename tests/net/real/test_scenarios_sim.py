"""Real-scenario specs on the sim backend, and the engine wiring.

These are the fast halves of the backend-parity contract: the spec
builders run all-local on the deterministic kernel, and the engine's
``ScenarioConfig(backend=...)`` routing is validated without spawning
any process.  The multi-process halves live in ``test_backend_parity.py``
under the ``realbackend`` marker.
"""

from __future__ import annotations

import pytest

from repro.bench.engine import ScenarioConfig, run_scenario
from repro.net.real.scenarios import (
    REAL_SCENARIOS,
    collect_record,
    run_sim,
    spec_params,
)


class TestRegistry:
    def test_both_specs_registered_with_their_nodes(self):
        assert REAL_SCENARIOS["figure9"].nodes == ("T1", "T2", "T3")
        assert REAL_SCENARIOS["transactional"].nodes == \
            ("W1", "W2", "objhost")

    def test_spec_params_merges_overrides_over_defaults(self):
        spec = REAL_SCENARIOS["transactional"]
        params = spec_params(spec, {"iterations": 7})
        assert params["iterations"] == 7
        assert params["limit"] == spec.defaults["limit"]


class TestFigure9Sim:
    @pytest.mark.parametrize("algorithm",
                             ["ours", "campbell-randell", "romanovsky96"])
    def test_oracles_hold(self, algorithm):
        result = run_sim("figure9", iterations=2, algorithm=algorithm)
        assert result.backend == "sim"
        assert result.violations == []
        # Experiment 1: per iteration the outer action recovers on all
        # three threads and the nested action aborts on two.
        assert result.outcomes[("Outer", "recovered")] == 6
        assert result.outcomes[("Inner", "aborted")] == 4


class TestTransactionalSim:
    def test_oracles_hold_and_counter_is_exact(self):
        result = run_sim("transactional", iterations=3)
        assert result.violations == []
        [counter] = result.records["sim"]["counters"]
        # Every iteration commits exactly one increment, even the ones
        # that recover from the overdraft exception (HANDLED exits still
        # commit via the designated committer).
        assert counter["final"] == counter["initial"] + 3
        assert counter["committed_writers"] == 3
        # Two workers conclude each of the three instances exactly once.
        assert sum(result.outcomes.values()) == 6

    def test_every_object_access_crosses_the_rpc_layer(self):
        result = run_sim("transactional", iterations=1)
        stats = result.stats
        assert stats["by_type"].get("RpcRequest", 0) > 0
        assert stats["by_type"].get("RpcReply", 0) > 0

    def test_limit_controls_the_overdraft_exception(self):
        quiet = run_sim("transactional", iterations=2, limit=10)
        assert quiet.violations == []
        assert quiet.outcomes == {("Transfer", "success"): 4}


class TestCollectRecord:
    def test_local_filter_restricts_quiescence_to_own_thread(self):
        spec = REAL_SCENARIOS["transactional"]
        built = spec.build(spec_params(spec, {"iterations": 1}), None, None)
        built.system.kernel.run()
        full = collect_record(built)
        assert {snap.thread for snap in full["quiescence"]} == {"W1", "W2"}
        only_w1 = collect_record(built, local="W1")
        assert {snap.thread for snap in only_w1["quiescence"]} == {"W1"}


class TestEngineWiring:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_scenario("figure9", config=ScenarioConfig(backend="fpga"))

    def test_real_backend_requires_a_real_capable_scenario(self):
        with pytest.raises(KeyError, match="no real-backend spec"):
            run_scenario("capacity", config=ScenarioConfig(backend="real"))

    def test_sim_backend_default_leaves_registry_path_untouched(self):
        rows = run_scenario("figure9",
                            points=[{"varying": "t_msg", "value": 0.2,
                                     "iterations": 1}],
                            config=ScenarioConfig(backend="sim"))
        assert len(rows) == 1
        assert "total_time" in rows[0]
