"""Hub protocol tests with scripted in-process clients (no child spawns).

A fake node is just an asyncio TCP client speaking the framed protocol,
so the hub's sequencing (hello barrier, msg routing, done + settle,
finalize, final collection) and its crash handling are pinned down
deterministically and fast enough for tier-1.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.real.framing import FrameDecoder, encode_frame
from repro.net.real.hub import Hub


class FakeNode:
    """Scripted hub client for one node name."""

    def __init__(self, name):
        self.name = name
        self.reader = None
        self.writer = None
        self.decoder = FrameDecoder()
        self.received = []

    async def connect(self, port):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", port)
        self.send({"kind": "hello", "node": self.name})

    def send(self, frame):
        self.writer.write(encode_frame(frame))

    async def expect(self, kind, timeout=5.0):
        """Read frames until one of ``kind`` arrives (others recorded)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            for frame in list(self.received):
                if frame["kind"] == kind:
                    self.received.remove(frame)
                    return frame
            remaining = deadline - asyncio.get_running_loop().time()
            data = await asyncio.wait_for(self.reader.read(65536), remaining)
            assert data, f"hub closed while waiting for {kind!r}"
            self.received.extend(self.decoder.feed(data))

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_hub(nodes, settle=0.05, stall=0.3):
    hub = Hub(nodes, settle=settle, stall=stall)
    server = await asyncio.start_server(hub.handle_client, "127.0.0.1", 0)
    return hub, server, server.sockets[0].getsockname()[1]


def test_full_run_sequence():
    async def scenario():
        hub, server, port = await start_hub(["a", "b"])
        a, b = FakeNode("a"), FakeNode("b")
        await a.connect(port)
        await b.connect(port)
        await asyncio.wait_for(hub.wait_connected(), 5)
        hub.broadcast({"kind": "start"})
        await a.expect("start")
        await b.expect("start")

        # Cross-node message: a -> b through the hub, verbatim.
        a.send({"kind": "msg", "src": "a", "dst": "b",
                "payload": {"n": 1}, "send_vt": 0.0, "deliver_vt": 0.1})
        routed = await b.expect("msg")
        assert routed["payload"] == {"n": 1}
        assert routed["deliver_vt"] == 0.1

        a.send({"kind": "done", "node": "a"})
        b.send({"kind": "done", "node": "b"})
        await asyncio.wait_for(hub.wait_quiescent(), 5)
        hub.broadcast({"kind": "finalize"})
        await a.expect("finalize")
        await b.expect("finalize")
        a.send({"kind": "final", "node": "a", "record": {"who": "a"}})
        b.send({"kind": "final", "node": "b", "record": {"who": "b"}})
        await asyncio.wait_for(hub.wait_finals(), 5)
        assert hub.finals == {"a": {"who": "a"}, "b": {"who": "b"}}
        assert hub.dead == set()
        await a.close()
        await b.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_traffic_resets_the_settle_window():
    async def scenario():
        hub, server, port = await start_hub(["a", "b"], settle=0.2)
        a, b = FakeNode("a"), FakeNode("b")
        await a.connect(port)
        await b.connect(port)
        await asyncio.wait_for(hub.wait_connected(), 5)
        a.send({"kind": "done", "node": "a"})
        b.send({"kind": "done", "node": "b"})
        waiter = asyncio.ensure_future(hub.wait_quiescent())
        # Keep the wire busy: quiescence must not be declared yet.
        for _ in range(3):
            await asyncio.sleep(0.05)
            a.send({"kind": "msg", "src": "a", "dst": "b",
                    "payload": None, "send_vt": 0, "deliver_vt": 0})
            assert not waiter.done()
        await asyncio.wait_for(waiter, 5)  # silence finally settles it
        await a.close()
        await b.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_disconnect_marks_node_dead_and_drops_its_frames():
    async def scenario():
        hub, server, port = await start_hub(["a", "b"], stall=0.15)
        a, b = FakeNode("a"), FakeNode("b")
        await a.connect(port)
        await b.connect(port)
        await asyncio.wait_for(hub.wait_connected(), 5)
        await b.close()  # crash
        await asyncio.sleep(0.05)
        assert hub.dead == {"b"}
        # Frames to the dead node are dropped, not an error.
        a.send({"kind": "msg", "src": "a", "dst": "b",
                "payload": None, "send_vt": 0, "deliver_vt": 0})
        await asyncio.sleep(0.05)
        assert hub.dropped_to_dead == 1
        # The degraded-quiescence stall window lets the run finalize even
        # though 'a' never reports done (it may wait on 'b' forever).
        await asyncio.wait_for(hub.wait_quiescent(), 5)
        a.send({"kind": "final", "node": "a", "record": {}})
        await asyncio.wait_for(hub.wait_finals(), 5)
        assert set(hub.finals) == {"a"}
        await a.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())
