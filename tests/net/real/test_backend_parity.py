"""Backend parity: the real OS-process backend against the sim kernel.

Marked ``realbackend`` (deselected from tier-1 like the ``explore``
budgets): every test here boots one process per scenario node, paces the
kernels against the wall clock, and is therefore seconds-slow and
scheduling-sensitive.  The contract checked is the ISSUE's acceptance
bar — on every scenario x algorithm cell the real run must pass every
InvariantMonitor oracle and report the *same* oracle verdicts and
(action, status) conclusion counts as the deterministic sim run of the
same spec.
"""

from __future__ import annotations

import pytest

from repro.net.real import RealBackendError, run_real, run_sim

pytestmark = pytest.mark.realbackend

#: Fast pacing for CI: 0.01 wall seconds per virtual time unit.
FAST = {"time_scale": 0.01, "wall_timeout": 90.0}

ALGORITHMS = ("ours", "campbell-randell", "romanovsky96")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_figure9_parity(algorithm):
    sim = run_sim("figure9", iterations=1, algorithm=algorithm)
    real = run_real("figure9", iterations=1, algorithm=algorithm, **FAST)
    assert sim.violations == []
    assert real.violations == []
    assert real.outcomes == sim.outcomes
    assert real.crashed == []
    assert set(real.records) == {"T1", "T2", "T3"}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_transactional_parity(algorithm):
    sim = run_sim("transactional", iterations=2, algorithm=algorithm)
    real = run_real("transactional", iterations=2, algorithm=algorithm,
                    **FAST)
    assert sim.violations == []
    assert real.violations == []
    assert real.outcomes == sim.outcomes
    # The no-lost-update oracle saw the authoritative host counter: both
    # backends commit exactly one increment per iteration.
    sim_counter = sim.records["sim"]["counters"][0]
    real_counter = real.records["objhost"]["counters"][0]
    assert real_counter["final"] == sim_counter["final"] == 2
    assert real_counter["committed_writers"] == 2


def test_crashed_node_does_not_hang_the_run():
    # Kill T3 early; the survivors block on its protocol messages, the
    # hub's stall window finalizes them, and the liveness oracles are
    # waived (the paper's guarantees assume delivery) while the safety
    # oracles still run — and must hold.
    result = run_real("figure9", iterations=5, time_scale=0.1,
                      wall_timeout=60.0, stall=1.5, kill=("T3", 0.6))
    assert result.crashed == ["T3"]
    assert set(result.records) == {"T1", "T2"}
    assert result.violations == []


def test_wall_timeout_kills_the_fleet():
    # An absurdly slow pacing cannot finish within the cap; the backend
    # must raise instead of hanging, and must not leak children (the
    # finally block kills them — join() would hang this test otherwise).
    with pytest.raises(RealBackendError, match="wall-clock timeout"):
        run_real("figure9", iterations=50, time_scale=10.0,
                 wall_timeout=3.0)
