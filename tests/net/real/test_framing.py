"""Unit tests for the real backend's length-prefixed wire framing."""

import pytest

from repro.net.real.framing import (
    FrameDecoder,
    FramingError,
    MAX_FRAME,
    encode_frame,
)


def test_roundtrip_single_frame():
    decoder = FrameDecoder()
    frames = list(decoder.feed(encode_frame({"kind": "hello", "node": "T1"})))
    assert frames == [{"kind": "hello", "node": "T1"}]
    assert decoder.pending_bytes() == 0


def test_multiple_frames_in_one_chunk():
    data = encode_frame(1) + encode_frame("two") + encode_frame([3, 3, 3])
    decoder = FrameDecoder()
    assert list(decoder.feed(data)) == [1, "two", [3, 3, 3]]


def test_byte_by_byte_feed_reassembles():
    payload = {"kind": "msg", "src": "a", "dst": "b",
               "payload": list(range(50)), "deliver_vt": 1.25}
    data = encode_frame(payload)
    decoder = FrameDecoder()
    frames = []
    for i in range(len(data)):
        frames.extend(decoder.feed(data[i:i + 1]))
    assert frames == [payload]
    assert decoder.pending_bytes() == 0


def test_partial_frame_stays_pending():
    data = encode_frame({"kind": "done", "node": "W1"})
    decoder = FrameDecoder()
    assert list(decoder.feed(data[:-3])) == []
    assert decoder.pending_bytes() == len(data) - 3
    assert list(decoder.feed(data[-3:])) == [{"kind": "done", "node": "W1"}]


def test_frame_boundary_split_mid_header():
    data = encode_frame("x") + encode_frame("y")
    decoder = FrameDecoder()
    # Split inside the second frame's 4-byte header.
    first = len(encode_frame("x")) + 2
    frames = list(decoder.feed(data[:first]))
    frames.extend(decoder.feed(data[first:]))
    assert frames == ["x", "y"]


def test_oversized_header_is_rejected():
    import struct

    decoder = FrameDecoder()
    with pytest.raises(FramingError):
        list(decoder.feed(struct.pack(">I", MAX_FRAME + 1)))
