"""Remote external objects over RPC: host service + participant proxy.

Everything here runs on the simulated network in one process — the same
proxy/service pair the real backend uses across OS processes, which is
the point: the protocol semantics (deferred lock grants, typed deadlock
refusals, reply timeouts) are pinned down where they are deterministic.
"""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.rpc import RpcEndpoint, RpcTimeoutError
from repro.objects.locks import DeadlockError
from repro.objects.remote import (
    ObjectHostService,
    RemoteTransaction,
    install_remote_objects,
)
from repro.objects.transaction import TransactionManager, TransactionStatus
from repro.simkernel.kernel import Kernel


def build_world(latency: float = 0.1, faults: FaultPlan = None):
    kernel = Kernel()
    network = Network(kernel, latency=ConstantLatency(latency),
                      faults=faults)
    client = RpcEndpoint(network.add_node("client"), network)
    host = RpcEndpoint(network.add_node("host"), network)
    manager = TransactionManager(kernel)
    manager.create_object("acct", {"value": 10})
    service = ObjectHostService(host, manager)
    return kernel, network, client, manager, service


def proxy(client, instance="A#1", action="A", timeout=None):
    return RemoteTransaction(client, "host", instance, action,
                             timeout=timeout)


class TestRoundtrip:
    def test_lock_read_write_commit(self):
        kernel, _n, client, manager, _service = build_world()
        txn = proxy(client)
        log = []

        def program():
            yield txn.lock("acct")
            value = yield txn.read("acct", "value")
            log.append(value)
            txn.write("acct", "value", value + 5)
            txn.commit()

        kernel.process(program())
        kernel.run()
        assert log == [10]
        assert manager.object("acct").committed_value("value") == 15
        assert txn.status is TransactionStatus.COMMITTED
        # The authoritative host transaction committed and released locks.
        assert manager.locks.all_holders() == {}

    def test_same_instance_key_reaches_one_host_transaction(self):
        kernel, _n, client, _manager, service = build_world()
        first = proxy(client, instance="A#7")
        second = proxy(client, instance="A#7")

        def program():
            yield first.lock("acct")
            value = yield second.read("acct", "value")
            assert value == 10

        kernel.process(program())
        kernel.run()
        assert set(service.transactions) == {"A#7"}

    def test_abort_undoes_writes_and_is_idempotent(self):
        kernel, _n, client, manager, _service = build_world()
        txn = proxy(client)

        def program():
            yield txn.lock("acct")
            txn.write("acct", "value", 99)
            txn.abort()

        kernel.process(program())
        kernel.run()
        assert manager.object("acct").committed_value("value") == 10
        assert txn.abort() is TransactionStatus.ABORTED  # no second call
        assert manager.locks.all_holders() == {}

    def test_repair_is_not_supported_remotely(self):
        _kernel, _n, client, _manager, _service = build_world()
        with pytest.raises(NotImplementedError):
            proxy(client).repair("acct", lambda state: state)


class TestLockProtocol:
    def test_contended_lock_grant_is_deferred_until_release(self):
        kernel, _n, client, _manager, _service = build_world()
        holder = proxy(client, instance="A#1")
        waiter = proxy(client, instance="A#2")
        granted_at = []

        def holding():
            yield holder.lock("acct")
            yield kernel.timeout(5.0)
            holder.commit()

        def waiting():
            yield kernel.timeout(0.5)  # let the holder acquire first
            yield waiter.lock("acct")
            granted_at.append(kernel.now)

        kernel.process(holding())
        kernel.process(waiting())
        kernel.run()
        # The reply only comes back after the holder's commit releases the
        # lock (commit is one-way: sent at 5.0, applied at 5.1, reply
        # travels 0.1 more).
        assert granted_at and granted_at[0] >= 5.0

    def test_deadlock_refusal_arrives_as_typed_error(self):
        kernel, _n, client, manager, _service = build_world()
        manager.create_object("other", {"value": 0})
        one = proxy(client, instance="A#1")
        two = proxy(client, instance="A#2")
        outcome = {}

        def program():
            yield one.lock("acct")
            yield two.lock("other")
            one.locked_pending = one.lock("other")  # queues behind two
            try:
                yield two.lock("acct")  # closes the wait-for cycle
            except DeadlockError as error:
                outcome["deadlock"] = str(error)

        kernel.process(program())
        kernel.run()
        assert "deadlock" in outcome


class TestTimeouts:
    def test_lost_reply_fails_with_rpc_timeout(self):
        faults = FaultPlan()
        faults.drop_nth_message("host", "client", 1)
        kernel, _n, client, _manager, _service = build_world(faults=faults)
        txn = proxy(client, timeout=1.0)
        outcome = {}

        def program():
            try:
                outcome["value"] = yield txn.read("acct", "value")
            except RpcTimeoutError as error:
                outcome["timeout"] = str(error)

        kernel.process(program())
        kernel.run()
        assert "timeout" in outcome and "value" not in outcome
        assert client._pending_replies == {}


class TestFactoryInstallation:
    def test_install_remote_objects_overrides_transaction_factory(self):
        kernel, _n, client, _manager, _service = build_world()

        class _System:
            transaction_factory = None

        class _Definition:
            name = "A"

        system = _System()
        install_remote_objects(system, lambda _key: client, "host",
                               timeout=2.5)
        txn = system.transaction_factory("A#4", _Definition())
        assert isinstance(txn, RemoteTransaction)
        assert txn.instance_key == "A#4"
        assert txn.action_name == "A"
        assert txn.timeout == 2.5
