"""Tests for the shared CLI logging plumbing (src/repro/cli.py)."""

from __future__ import annotations

import argparse
import logging

import pytest

from repro.cli import add_logging_arguments, configure_logging


@pytest.fixture
def clean_repro_logger():
    """Snapshot and restore the package logger around each test."""
    logger = logging.getLogger("repro")
    state = (logger.level, list(logger.handlers), logger.propagate)
    yield logger
    logger.level, logger.handlers[:], logger.propagate = state


def parse(*argv: str) -> argparse.Namespace:
    parser = argparse.ArgumentParser()
    add_logging_arguments(parser)
    return parser.parse_args(list(argv))


class TestConfigureLogging:
    @pytest.mark.parametrize("argv,level", [
        ((), logging.WARNING),
        (("-v",), logging.INFO),
        (("-vv",), logging.DEBUG),
        (("-q",), logging.ERROR),
        (("-qq",), logging.CRITICAL),
        (("-v", "-q"), logging.WARNING),
    ])
    def test_verbosity_maps_to_levels(self, clean_repro_logger, argv, level):
        assert configure_logging(parse(*argv)).level == level

    def test_extreme_counts_are_clamped(self, clean_repro_logger):
        assert configure_logging(verbose=9).level == logging.DEBUG
        assert configure_logging(quiet=9).level == logging.CRITICAL

    def test_repeated_configuration_never_stacks_handlers(
            self, clean_repro_logger):
        # The test suite calls entry-point main()s repeatedly in one
        # process; each reconfiguration must adjust the level, not add
        # another handler (which would multiply every log line).
        logger = configure_logging(verbose=1)
        assert configure_logging(quiet=1) is logger
        ours = [handler for handler in logger.handlers
                if handler.get_name() == "repro-cli"]
        assert len(ours) == 1
        assert logger.level == logging.ERROR

    def test_propagation_stays_on_for_embedders(self, clean_repro_logger):
        # Root-level capture (pytest's caplog, an application's own
        # logging config) must keep seeing the tree after a CLI main()
        # ran in the same process.
        assert configure_logging().propagate is True


class TestEntryPointsShareTheFlags:
    def test_conformance_list_verbose(self, clean_repro_logger, capsys):
        from repro.conformance import main
        assert main(["--list", "-v"]) == 0
        assert "churn_ours" in capsys.readouterr().out
        assert logging.getLogger("repro").level == logging.INFO

    def test_baseline_list_quiet(self, clean_repro_logger, capsys):
        from repro.bench.baseline import main
        assert main(["--list", "-q"]) == 0
        assert "capacity" in capsys.readouterr().out
        assert logging.getLogger("repro").level == logging.ERROR

    def test_obs_cli_accepts_the_flags(self, clean_repro_logger, tmp_path,
                                       capsys):
        from repro.obs import write_jsonl
        from repro.obs.__main__ import main
        path = str(tmp_path / "events.jsonl")
        write_jsonl([{"t": 0.0, "kind": "job.submitted"}], path)
        assert main(["-v", "summarize", path]) == 0
        assert logging.getLogger("repro").level == logging.INFO
