"""Direct unit tests of the life-cycle subsystem and its frame state."""

import pytest

from repro.core import HandlerMap, HandlerResult
from repro.core.exceptions import FAILURE, NO_EXCEPTION, UNDO, interface
from repro.runtime import ActionStatus, FrameStack
from repro.runtime.lifecycle import ActionLifecycle, call_user
from tests.conftest import make_simple_system, run_single_action
from tests.runtime.test_runtime import make_action

EPS = interface("eps")


# ----------------------------------------------------------------------
# FrameStack: instance keys and frame lookup
# ----------------------------------------------------------------------
class TestFrameStack:
    def test_top_level_instance_keys_count_occurrences(self):
        stack = FrameStack()
        assert stack.next_instance_key("A", None) == (1, "A#1")
        assert stack.next_instance_key("A", None) == (2, "A#2")
        assert stack.next_instance_key("B", None) == (1, "B#1")

    def test_nested_instance_keys_chain_through_the_parent(self):
        stack = FrameStack()

        class FakeParent:
            instance_key = "Outer#1"

        occurrence, key = stack.next_instance_key("Inner", FakeParent())
        assert (occurrence, key) == (1, "Outer#1/Inner#1")
        occurrence, key = stack.next_instance_key("Inner", FakeParent())
        assert (occurrence, key) == (2, "Outer#1/Inner#2")

    def test_same_action_under_different_parents_counted_separately(self):
        stack = FrameStack()

        class P1:
            instance_key = "Outer#1"

        class P2:
            instance_key = "Outer#2"

        assert stack.next_instance_key("Inner", P1()) == (1, "Outer#1/Inner#1")
        assert stack.next_instance_key("Inner", P2()) == (1, "Outer#2/Inner#1")

    def test_find_matches_name_and_instance_key_innermost_first(self):
        stack = FrameStack()

        class FakeFrame:
            def __init__(self, action, instance_key):
                self.action = action
                self.instance_key = instance_key

        outer = FakeFrame("A", "A#1")
        inner = FakeFrame("A", "A#2")
        stack.push(outer)
        stack.push(inner)
        assert stack.find("A") is inner
        assert stack.find("A#1") is outer
        assert stack.find("Nope") is None
        stack.remove(inner)
        assert stack.find("A") is outer


# ----------------------------------------------------------------------
# call_user: plain callables vs generator functions
# ----------------------------------------------------------------------
class TestCallUser:
    def drive(self, generator):
        try:
            while True:
                next(generator)
        except StopIteration as stop:
            return stop.value

    def test_none_returns_none(self):
        assert self.drive(call_user(None, object())) is None

    def test_plain_function_is_called_directly(self):
        assert self.drive(call_user(lambda ctx: ctx + 1, 41)) == 42

    def test_generator_function_is_delegated_to(self):
        def body(ctx):
            yield
            return ctx * 2

        assert self.drive(call_user(body, 21)) == 42


# ----------------------------------------------------------------------
# Signalling proposals
# ----------------------------------------------------------------------
class TestProposalMapping:
    def test_success_proposes_no_exception(self):
        result = HandlerResult.success()
        assert ActionLifecycle._proposal_from(result) == NO_EXCEPTION

    def test_signal_proposes_the_exception(self):
        assert ActionLifecycle._proposal_from(HandlerResult.signal(EPS)) == EPS

    def test_abort_proposes_undo(self):
        assert ActionLifecycle._proposal_from(HandlerResult.abort()) == UNDO

    def test_failure_proposes_failure(self):
        result = HandlerResult.failed("broken")
        assert ActionLifecycle._proposal_from(result) == FAILURE


# ----------------------------------------------------------------------
# Life-cycle bookkeeping across a full run
# ----------------------------------------------------------------------
class TestLifecycleBookkeeping:
    def test_frames_are_popped_and_status_restored(self):
        system = make_simple_system()
        reports = run_single_action(
            system,
            make_action("A", [lambda ctx: (yield ctx.delay(0.1)), None]),
            {"r1": "T1", "r2": "T2"})
        assert all(report.status is ActionStatus.SUCCESS for report in reports)
        for partition in system.partitions.values():
            assert len(partition.frames) == 0
            assert partition.status == "idle"
            assert partition.pending_abort is None

    def test_sequential_instances_get_distinct_keys(self):
        system = make_simple_system()
        action = make_action("A", [None, None])
        system.define_action(action)
        system.bind("A", {"r1": "T1", "r2": "T2"})

        def program(role):
            def body(ctx):
                first = yield from ctx.perform_action("A", role)
                second = yield from ctx.perform_action("A", role)
                return (first, second)
            return body

        system.spawn("T1", program("r1"))
        system.spawn("T2", program("r2"))
        system.run_to_completion()
        occurrences = system.partitions["T1"].frames.occurrences
        assert occurrences["|A"] == 2

    def test_unbound_role_is_rejected(self):
        system = make_simple_system()
        action = make_action("A", [None, None])
        system.define_action(action)
        system.bind("A", {"r1": "T1", "r2": "T2"})

        def program(ctx):
            yield from ctx.perform_action("A", "r9")

        system.spawn("T1", program)
        with pytest.raises(ValueError):
            system.run()

    def test_role_bound_elsewhere_is_rejected(self):
        system = make_simple_system()
        action = make_action("A", [None, None])
        system.define_action(action)
        system.bind("A", {"r1": "T1", "r2": "T2"})

        def program(ctx):
            yield from ctx.perform_action("A", "r2")   # r2 belongs to T2

        system.spawn("T1", program)
        with pytest.raises(ValueError):
            system.run()
