"""Integration-level tests of the distributed CA-action runtime."""

import pytest

from repro.core import (
    CAActionDefinition,
    ExceptionGraph,
    HandlerMap,
    HandlerResult,
    RoleDefinition,
    interface,
    internal,
)
from repro.core.exception_graph import generate_full_graph
from repro.net import ConstantLatency
from repro.objects import TransactionStatus
from repro.runtime import (
    ActionStatus,
    DistributedCASystem,
    RuntimeConfig,
    SystemConfigurationError,
)

from tests.conftest import make_simple_system, run_single_action

FAULT = internal("fault")
OTHER_FAULT = internal("other_fault")
EPS = interface("eps")


def success_handler(ctx):
    return HandlerResult.success()


def make_action(name, bodies, handlers=None, internal_exceptions=(FAULT,),
                graph=None, external_objects=()):
    roles = []
    for index, body in enumerate(bodies, start=1):
        handler_map = handlers[index - 1] if handlers else \
            HandlerMap(default_handler=success_handler)
        roles.append(RoleDefinition(f"r{index}", body, handler_map))
    return CAActionDefinition(
        name, roles, internal_exceptions=list(internal_exceptions),
        graph=graph or generate_full_graph(list(internal_exceptions),
                                           action_name=name),
        external_objects=list(external_objects))


# ----------------------------------------------------------------------
# Configuration and system wiring
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(algorithm="nonexistent")

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(resolution_time=-1)

    def test_charge_duration_mapping(self):
        config = RuntimeConfig(resolution_time=0.5, abort_time=0.25)
        assert config.charge_duration("resolution", 2) == 1.0
        assert config.charge_duration("abort") == 0.25
        with pytest.raises(ValueError):
            config.charge_duration("unknown")

    def test_coordinator_factory_selects_algorithm(self):
        from repro.core.baselines import CampbellRandellCoordinator
        config = RuntimeConfig(algorithm="campbell-randell")
        assert isinstance(config.make_coordinator("T1"),
                          CampbellRandellCoordinator)

    def test_duplicate_thread_rejected(self):
        system = make_simple_system()
        with pytest.raises(SystemConfigurationError):
            system.add_thread("T1")

    def test_binding_validation(self):
        system = make_simple_system()
        action = make_action("A", [None, None])
        system.define_action(action)
        with pytest.raises(SystemConfigurationError):
            system.bind("A", {"r1": "T1"})                      # missing role
        with pytest.raises(SystemConfigurationError):
            system.bind("A", {"r1": "T1", "r2": "T2", "zz": "T1"})
        with pytest.raises(SystemConfigurationError):
            system.bind("A", {"r1": "T1", "r2": "Nobody"})
        with pytest.raises(SystemConfigurationError):
            system.binding("Unbound")

    def test_spawn_on_unknown_thread_rejected(self):
        system = make_simple_system()
        with pytest.raises(SystemConfigurationError):
            system.spawn("Nope", lambda ctx: iter(()))

    def test_run_to_completion_without_programs_rejected(self):
        with pytest.raises(SystemConfigurationError):
            make_simple_system().run_to_completion()


# ----------------------------------------------------------------------
# Normal (exception-free) execution
# ----------------------------------------------------------------------
class TestNormalExecution:
    def test_roles_cooperate_and_exit_synchronously(self):
        system = make_simple_system(latency=0.1)

        def r1(ctx):
            ctx.send("r2", "data", 21)
            reply = yield ctx.receive("reply")
            return reply

        def r2(ctx):
            value = yield ctx.receive("data")
            ctx.send("r1", "reply", value * 2)
            return "served"

        reports = run_single_action(system, make_action("A", [r1, r2]),
                                    {"r1": "T1", "r2": "T2"})
        assert [r.status for r in reports] == [ActionStatus.SUCCESS] * 2
        assert reports[0].result == 42
        # Exit is synchronous: nobody leaves before the slower role is ready,
        # so the two exits differ by at most one message delay.
        assert abs(reports[0].finished_at - reports[1].finished_at) <= 0.1 + 1e-9
        assert min(r.finished_at for r in reports) >= \
            max(r.started_at for r in reports)

    def test_external_object_committed_once_on_success(self):
        system = make_simple_system()
        system.create_object("counter", {"value": 0})

        def writer(ctx):
            ctx.write("counter", "value", ctx.read("counter", "value") + 1)
            yield ctx.delay(0.1)

        def reader(ctx):
            yield ctx.delay(0.1)

        run_single_action(system, make_action("A", [writer, reader],
                                              external_objects=["counter"]),
                          {"r1": "T1", "r2": "T2"})
        counter = system.transactions.object("counter")
        assert counter.committed_value("value") == 1
        assert counter.version == 1

    def test_roles_without_bodies_complete_immediately(self):
        system = make_simple_system()
        reports = run_single_action(system, make_action("A", [None, None]),
                                    {"r1": "T1", "r2": "T2"})
        assert all(report.status is ActionStatus.SUCCESS for report in reports)

    def test_sequential_actions_on_same_threads(self):
        system = make_simple_system()
        action = make_action("A", [lambda ctx: (yield ctx.delay(0.1)),
                                   lambda ctx: (yield ctx.delay(0.1))])
        system.define_action(action)
        system.bind("A", {"r1": "T1", "r2": "T2"})

        def program(role):
            def body(ctx):
                results = []
                for _ in range(3):
                    report = yield from ctx.perform_action("A", role)
                    results.append(report.status)
                return results
            return body

        system.spawn("T1", program("r1"))
        system.spawn("T2", program("r2"))
        results = system.run_to_completion()
        assert all(status is ActionStatus.SUCCESS
                   for statuses in results for status in statuses)

    def test_no_protocol_messages_without_exceptions(self):
        system = make_simple_system()
        run_single_action(system, make_action("A", [None, None]),
                          {"r1": "T1", "r2": "T2"})
        assert system.network.stats.protocol_messages() == 0


# ----------------------------------------------------------------------
# Exception handling through the full runtime
# ----------------------------------------------------------------------
class TestExceptionHandling:
    def test_single_raise_reaches_all_handlers(self):
        system = make_simple_system(n_threads=3, resolution_time=0.1)
        handled = []

        def handler(ctx):
            handled.append(ctx.thread_id)
            return HandlerResult.success()

        def raiser(ctx):
            yield ctx.delay(0.2)
            ctx.raise_exception(FAULT)

        def worker(ctx):
            yield ctx.delay(5.0)

        handlers = [HandlerMap({FAULT: handler})] * 3
        reports = run_single_action(
            system, make_action("A", [raiser, worker, worker],
                                handlers=handlers),
            {"r1": "T1", "r2": "T2", "r3": "T3"})
        assert sorted(handled) == ["T1", "T2", "T3"]
        assert all(report.status is ActionStatus.RECOVERED for report in reports)
        assert all(report.resolved == FAULT for report in reports)

    def test_concurrent_raises_resolved_through_graph(self):
        system = make_simple_system(n_threads=2)
        graph = generate_full_graph([FAULT, OTHER_FAULT], action_name="A")
        resolved_names = []

        def handler(ctx):
            resolved_names.append(ctx.resolved_exception.name)
            return HandlerResult.success()

        def raiser(exception):
            def body(ctx):
                yield ctx.delay(0.2)
                ctx.raise_exception(exception)
            return body

        handlers = [HandlerMap(default_handler=handler)] * 2
        reports = run_single_action(
            system,
            make_action("A", [raiser(FAULT), raiser(OTHER_FAULT)],
                        handlers=handlers,
                        internal_exceptions=(FAULT, OTHER_FAULT), graph=graph),
            {"r1": "T1", "r2": "T2"})
        assert all(name == "fault&other_fault" for name in resolved_names)
        assert all(report.status is ActionStatus.RECOVERED for report in reports)

    def test_handler_signalling_interface_exception(self):
        system = make_simple_system(n_threads=2)

        def signalling_handler(ctx):
            return HandlerResult.signal(EPS)

        def quiet_handler(ctx):
            return HandlerResult.success()

        def raiser(ctx):
            yield ctx.delay(0.1)
            ctx.raise_exception(FAULT)

        def worker(ctx):
            yield ctx.delay(1.0)

        handlers = [HandlerMap({FAULT: signalling_handler}),
                    HandlerMap({FAULT: quiet_handler})]
        action = CAActionDefinition(
            "A", [RoleDefinition("r1", raiser, handlers[0]),
                  RoleDefinition("r2", worker, handlers[1])],
            internal_exceptions=[FAULT], interface_exceptions=[EPS],
            graph=generate_full_graph([FAULT], action_name="A"))
        reports = run_single_action(system, action, {"r1": "T1", "r2": "T2"})
        by_thread = {report.thread: report for report in reports}
        assert by_thread["T1"].status is ActionStatus.SIGNALLED
        assert by_thread["T1"].signalled == EPS
        assert by_thread["T2"].status is ActionStatus.RECOVERED

    def test_abort_handler_result_undoes_external_objects(self):
        system = make_simple_system(n_threads=2)
        system.create_object("store", {"value": 0})

        def aborting_handler(ctx):
            return HandlerResult.abort()

        def writer(ctx):
            ctx.write("store", "value", 99)
            yield ctx.delay(0.1)
            ctx.raise_exception(FAULT)

        def worker(ctx):
            yield ctx.delay(1.0)

        handlers = [HandlerMap({FAULT: aborting_handler})] * 2
        reports = run_single_action(
            system, make_action("A", [writer, worker], handlers=handlers,
                                external_objects=["store"]),
            {"r1": "T1", "r2": "T2"})
        assert all(report.status is ActionStatus.UNDONE for report in reports)
        assert all(report.signalled.name == "mu" for report in reports)
        assert system.transactions.object("store").committed_value("value") == 0

    def test_failed_undo_signals_failure(self):
        system = make_simple_system(n_threads=2)
        store = system.create_object("store", {"value": 0})
        store.inject_undo_fault()

        def aborting_handler(ctx):
            return HandlerResult.abort()

        def writer(ctx):
            ctx.write("store", "value", 99)
            yield ctx.delay(0.1)
            ctx.raise_exception(FAULT)

        def worker(ctx):
            yield ctx.delay(1.0)

        handlers = [HandlerMap({FAULT: aborting_handler})] * 2
        reports = run_single_action(
            system, make_action("A", [writer, worker], handlers=handlers,
                                external_objects=["store"]),
            {"r1": "T1", "r2": "T2"})
        assert all(report.status is ActionStatus.FAILED for report in reports)
        assert all(report.signalled.name == "failure" for report in reports)

    def test_exception_while_waiting_at_exit_barrier(self):
        """A fast role already at the exit barrier still joins the recovery."""
        system = make_simple_system(n_threads=2, latency=0.2)
        handled = []

        def handler(ctx):
            handled.append(ctx.thread_id)
            return HandlerResult.success()

        def fast(ctx):
            yield ctx.delay(0.05)       # finishes long before the raiser

        def slow_raiser(ctx):
            yield ctx.delay(2.0)
            ctx.raise_exception(FAULT)

        handlers = [HandlerMap({FAULT: handler})] * 2
        reports = run_single_action(
            system, make_action("A", [fast, slow_raiser], handlers=handlers),
            {"r1": "T1", "r2": "T2"})
        assert sorted(handled) == ["T1", "T2"]
        assert all(report.status is ActionStatus.RECOVERED for report in reports)

    def test_metrics_reflect_the_run(self):
        system = make_simple_system(n_threads=3)

        def raiser(ctx):
            yield ctx.delay(0.1)
            ctx.raise_exception(FAULT)

        def worker(ctx):
            yield ctx.delay(1.0)

        handlers = [HandlerMap(default_handler=success_handler)] * 3
        run_single_action(system,
                          make_action("A", [raiser, worker, worker],
                                      handlers=handlers),
                          {"r1": "T1", "r2": "T2", "r3": "T3"})
        metrics = system.metrics
        assert metrics.exceptions_raised == 1
        assert metrics.resolutions == 1
        assert metrics.handlers_invoked == 3
        assert len(metrics.action_outcomes) == 3


# ----------------------------------------------------------------------
# Nested actions
# ----------------------------------------------------------------------
class TestNestedActions:
    def build_nested_system(self, nested_raises=False,
                            abortion_signals=True):
        system = make_simple_system(n_threads=3, resolution_time=0.05,
                                    abort_time=0.05)
        abort_residue = internal("abort_residue")
        events = []

        def outer_handler(ctx):
            events.append(("outer-handled", ctx.thread_id))
            return HandlerResult.success()

        def abortion_handler(ctx):
            events.append(("aborted", ctx.thread_id))
            if abortion_signals:
                return HandlerResult.signal(abort_residue)
            return HandlerResult.success()

        def nested_body(ctx):
            if nested_raises:
                yield ctx.delay(0.1)
                ctx.raise_exception(FAULT)
            yield ctx.delay(20.0)

        inner = CAActionDefinition(
            "Inner",
            [RoleDefinition("n1", nested_body,
                            HandlerMap(abortion_handler=abortion_handler,
                                       default_handler=outer_handler)),
             RoleDefinition("n2", nested_body,
                            HandlerMap(abortion_handler=abortion_handler,
                                       default_handler=outer_handler))],
            internal_exceptions=[FAULT],
            graph=generate_full_graph([FAULT], action_name="Inner"),
            parent="Outer")

        def raising_role(ctx):
            yield ctx.delay(1.0)
            ctx.raise_exception(OTHER_FAULT)

        def nesting_role(nested_role):
            def body(ctx):
                yield from ctx.perform_nested("Inner", nested_role)
            return body

        outer = CAActionDefinition(
            "Outer",
            [RoleDefinition("o1", raising_role,
                            HandlerMap(default_handler=outer_handler)),
             RoleDefinition("o2", nesting_role("n1"),
                            HandlerMap(default_handler=outer_handler)),
             RoleDefinition("o3", nesting_role("n2"),
                            HandlerMap(default_handler=outer_handler))],
            internal_exceptions=[OTHER_FAULT, abort_residue, FAULT],
            graph=generate_full_graph([OTHER_FAULT, abort_residue, FAULT],
                                      max_level=1, action_name="Outer"))

        system.define_action(outer)
        system.define_action(inner)
        system.bind("Outer", {"o1": "T1", "o2": "T2", "o3": "T3"})
        system.bind("Inner", {"n1": "T2", "n2": "T3"})
        return system, events

    def run_outer(self, system):
        def program(role):
            def body(ctx):
                report = yield from ctx.perform_action("Outer", role)
                return report
            return body
        system.spawn("T1", program("o1"))
        system.spawn("T2", program("o2"))
        system.spawn("T3", program("o3"))
        return system.run_to_completion()

    def test_enclosing_exception_aborts_nested_action(self):
        system, events = self.build_nested_system()
        reports = self.run_outer(system)
        assert {thread for tag, thread in events if tag == "aborted"} == \
            {"T2", "T3"}
        assert all(report.status is ActionStatus.RECOVERED for report in reports)
        assert system.metrics.abortions == 2

    def test_abortion_exception_joins_resolution(self):
        system, events = self.build_nested_system(abortion_signals=True)
        reports = self.run_outer(system)
        resolved = {report.resolved.name for report in reports}
        assert resolved == {"abort_residue&other_fault"}

    def test_silent_abortion_resolves_to_enclosing_exception_only(self):
        system, events = self.build_nested_system(abortion_signals=False)
        reports = self.run_outer(system)
        assert {report.resolved.name for report in reports} == {"other_fault"}

    def test_exception_inside_nested_action_is_invisible_outside(self):
        system, events = self.build_nested_system(nested_raises=True)
        # Disarm the outer raiser so only the nested exception occurs.
        def quiet(ctx):
            yield ctx.delay(0.2)
        system.registry.get("Outer").roles["o1"].body = quiet
        reports = self.run_outer(system)
        # The nested action recovered internally; the outer action succeeds.
        assert all(report.status is ActionStatus.SUCCESS for report in reports)
        assert system.metrics.resolutions == 1

    def test_nested_signal_becomes_enclosing_exception(self):
        system = make_simple_system(n_threads=2)
        eps = interface("partial_result")
        outer_handled = []

        def nested_role(ctx):
            yield ctx.delay(0.1)
            ctx.raise_exception(FAULT)

        def nested_handler(ctx):
            return HandlerResult.signal(eps)

        inner = CAActionDefinition(
            "Inner",
            [RoleDefinition("n1", nested_role,
                            HandlerMap({FAULT: nested_handler})),
             RoleDefinition("n2", lambda ctx: (yield ctx.delay(1.0)),
                            HandlerMap({FAULT: nested_handler}))],
            internal_exceptions=[FAULT], interface_exceptions=[eps],
            graph=generate_full_graph([FAULT], action_name="Inner"),
            parent="Outer")

        def outer_handler(ctx):
            outer_handled.append((ctx.thread_id, ctx.resolved_exception.name))
            return HandlerResult.success()

        def outer_role(nested_role_name):
            def body(ctx):
                yield from ctx.perform_nested("Inner", nested_role_name)
            return body

        outer = CAActionDefinition(
            "Outer",
            [RoleDefinition("o1", outer_role("n1"),
                            HandlerMap(default_handler=outer_handler)),
             RoleDefinition("o2", outer_role("n2"),
                            HandlerMap(default_handler=outer_handler))],
            internal_exceptions=[eps],
            graph=generate_full_graph([eps], action_name="Outer"))

        system.define_action(outer)
        system.define_action(inner)
        system.bind("Outer", {"o1": "T1", "o2": "T2"})
        system.bind("Inner", {"n1": "T1", "n2": "T2"})

        def program(role):
            def body(ctx):
                report = yield from ctx.perform_action("Outer", role)
                return report
            return body

        system.spawn("T1", program("o1"))
        system.spawn("T2", program("o2"))
        reports = system.run_to_completion()
        # T1's handler signals eps, which both outer roles then handle.
        assert any(name == "partial_result" for _t, name in outer_handled)
        assert all(report.ok for report in reports)


# ----------------------------------------------------------------------
# Algorithm plug-ability through the runtime
# ----------------------------------------------------------------------
class TestAlgorithmSelection:
    @pytest.mark.parametrize("algorithm",
                             ["ours", "campbell-randell", "romanovsky96"])
    def test_same_scenario_all_algorithms(self, algorithm):
        system = make_simple_system(n_threads=3, algorithm=algorithm)
        handled = []

        def handler(ctx):
            handled.append(ctx.thread_id)
            return HandlerResult.success()

        def raiser(ctx):
            yield ctx.delay(0.1)
            ctx.raise_exception(FAULT)

        def worker(ctx):
            yield ctx.delay(2.0)

        handlers = [HandlerMap({FAULT: handler})] * 3
        reports = run_single_action(
            system, make_action("A", [raiser, worker, worker],
                                handlers=handlers),
            {"r1": "T1", "r2": "T2", "r3": "T3"})
        assert sorted(handled) == ["T1", "T2", "T3"]
        assert all(report.status is ActionStatus.RECOVERED for report in reports)
