"""Direct unit tests of the partition dispatcher subsystem."""

import pytest

from repro.core.exceptions import internal
from repro.core.messages import (
    ApplicationMessage,
    EnterActionMessage,
    ExitReadyMessage,
    ToBeSignalledMessage,
)
from tests.conftest import make_simple_system

FAULT = internal("fault")


def drive(generator):
    """Run a dispatch generator to completion, collecting anything it yields."""
    return list(generator)


@pytest.fixture
def partition():
    return make_simple_system(n_threads=3).partitions["T1"]


class TestEntryExitBookkeeping:
    def test_entry_announcements_accumulate(self, partition):
        dispatcher = partition.dispatcher
        assert not dispatcher.entry_complete("A#1", {"T2", "T3"})
        drive(dispatcher.dispatch(EnterActionMessage("A", "T2", "r2", "A#1")))
        assert not dispatcher.entry_complete("A#1", {"T2", "T3"})
        drive(dispatcher.dispatch(EnterActionMessage("A", "T3", "r3", "A#1")))
        assert dispatcher.entry_complete("A#1", {"T2", "T3"})

    def test_entry_wait_event_triggers_on_last_announcement(self, partition):
        dispatcher = partition.dispatcher
        drive(dispatcher.dispatch(EnterActionMessage("A", "T2", "r2", "A#1")))
        event = dispatcher.register_entry_wait("A#1", {"T2", "T3"})
        assert not event.triggered
        drive(dispatcher.dispatch(EnterActionMessage("A", "T3", "r3", "A#1")))
        assert event.triggered

    def test_cleared_entry_wait_is_not_triggered(self, partition):
        dispatcher = partition.dispatcher
        event = dispatcher.register_entry_wait("A#1", {"T2"})
        dispatcher.clear_entry_wait("A#1")
        drive(dispatcher.dispatch(EnterActionMessage("A", "T2", "r2", "A#1")))
        assert not event.triggered

    def test_exit_bookkeeping_mirrors_entry(self, partition):
        dispatcher = partition.dispatcher
        event = dispatcher.register_exit_wait("A#1", {"T2"})
        drive(dispatcher.dispatch(
            ExitReadyMessage("A", "T2", "success", "A#1")))
        assert dispatcher.exit_complete("A#1", {"T2"})
        assert event.triggered

    def test_instances_are_tracked_separately(self, partition):
        dispatcher = partition.dispatcher
        drive(dispatcher.dispatch(EnterActionMessage("A", "T2", "r2", "A#1")))
        assert dispatcher.entry_complete("A#1", {"T2"})
        assert not dispatcher.entry_complete("A#2", {"T2"})


class TestRouting:
    def test_application_message_reaches_mailbox(self, partition):
        kernel = partition.kernel
        message = ApplicationMessage(action="A#1", sender="T2",
                                     recipient="T1", tag="data", body=41)
        drive(partition.dispatcher.dispatch(message))
        received = []

        def consumer():
            received.append((yield partition.dispatcher.mailbox("A#1",
                                                                "data").get()))

        kernel.process(consumer())
        kernel.run()
        assert received == [41]

    def test_mailboxes_are_per_instance_and_tag(self, partition):
        dispatcher = partition.dispatcher
        assert dispatcher.mailbox("A#1", "x") is dispatcher.mailbox("A#1", "x")
        assert dispatcher.mailbox("A#1", "x") is not dispatcher.mailbox("A#1",
                                                                       "y")
        assert dispatcher.mailbox("A#1", "x") is not dispatcher.mailbox("A#2",
                                                                       "x")

    def test_signalling_message_parked_without_frame(self, partition):
        message = ToBeSignalledMessage("A", "T2", FAULT)
        drive(partition.dispatcher.dispatch(message))
        assert partition.dispatcher.take_pending_signals("A") == [message]
        # Taking the pending list empties it.
        assert partition.dispatcher.take_pending_signals("A") == []

    def test_protocol_message_feeds_coordinator(self, partition):
        # Without an active action the coordinator retains the message; the
        # dispatcher must not crash and must not emit effects.
        from repro.core.messages import ExceptionMessage
        drive(partition.dispatcher.dispatch(
            ExceptionMessage("A", "T2", FAULT)))
        assert partition.coordinator.retained

    def test_unknown_payload_is_logged(self, partition):
        drive(partition.dispatcher.dispatch(object()))
        assert any("unhandled payload" in line for line in partition.log)
