"""Direct unit tests for action outcome reports (runtime/report.py)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import NO_EXCEPTION, internal
from repro.runtime.report import ActionReport, ActionStatus


class TestActionStatus:
    def test_values_cover_the_paper_outcomes(self):
        assert {status.value for status in ActionStatus} == {
            "success", "recovered", "signalled", "undone", "failed",
            "aborted"}


class TestActionReport:
    def make(self, status, **kwargs):
        return ActionReport("A", "r1", "T1", status, **kwargs)

    def test_ok_for_clean_outcomes_only(self):
        assert self.make(ActionStatus.SUCCESS).ok
        assert self.make(ActionStatus.RECOVERED).ok
        for status in (ActionStatus.SIGNALLED, ActionStatus.UNDONE,
                       ActionStatus.FAILED,
                       ActionStatus.ABORTED_BY_ENCLOSING):
            assert not self.make(status).ok

    def test_duration(self):
        report = self.make(ActionStatus.SUCCESS, started_at=1.5,
                           finished_at=4.0)
        assert report.duration == pytest.approx(2.5)

    def test_defaults(self):
        report = self.make(ActionStatus.SUCCESS)
        assert report.signalled == NO_EXCEPTION
        assert report.resolved is None
        assert report.result is None
        assert report.duration == 0.0

    def test_repr_mentions_signalled_exception_only_when_present(self):
        clean = self.make(ActionStatus.SUCCESS)
        assert "signalled" not in repr(clean)
        epsilon = internal("epsilon")
        signalled = self.make(ActionStatus.SIGNALLED, signalled=epsilon)
        text = repr(signalled)
        assert "signalled=epsilon" in text
        assert "A/r1@T1" in text


class TestStatusObservabilityContract:
    """ActionStatus is the span-outcome vocabulary of repro.obs."""

    def test_statuses_flatten_to_their_values_in_event_records(self):
        # The observation layer stores probe payloads as plain JSON; an
        # ActionStatus must flatten to its paper-facing string value so
        # span outcomes and concluded-counter labels read naturally.
        from repro.obs.observation import _plain
        for status in ActionStatus:
            assert _plain(status) == status.value

    def test_each_status_is_a_distinct_span_outcome(self):
        from repro.obs import build_spans, span_outcomes
        events = []
        for index, status in enumerate(ActionStatus):
            key = {"action": "A", "instance": f"i{index}", "thread": "T1"}
            events.append({"t": float(index), "kind": "action.entered",
                           **key})
            events.append({"t": index + 0.5, "kind": "action.concluded",
                           "status": status.value, **key})
        completed, still_open = build_spans(events)
        assert still_open == []
        assert span_outcomes(completed) == {
            status.value: 1 for status in ActionStatus}
