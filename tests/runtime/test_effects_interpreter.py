"""Tests for the EffectInterpreter interface and the partition interpreter."""

import pytest

from repro.core import effects as fx
from repro.core.exceptions import internal
from repro.core.messages import SuspendedMessage
from tests.conftest import make_simple_system

FAULT = internal("fault")


# ----------------------------------------------------------------------
# The abstract dispatch machinery (core.effects.EffectInterpreter)
# ----------------------------------------------------------------------
class TestHandlerNaming:
    def test_camel_case_becomes_snake_case(self):
        assert fx.handler_name(fx.SendTo) == "on_send_to"
        assert fx.handler_name(fx.ChargeTime) == "on_charge_time"
        assert fx.handler_name(fx.AbortNested) == "on_abort_nested"
        assert fx.handler_name(fx.LogEvent) == "on_log_event"


class Recorder(fx.EffectInterpreter):
    """Interpreter recording dispatches, batches and yielded values."""

    def __init__(self):
        super().__init__()
        self.events = []
        self.finished_batches = []

    def begin_batch(self):
        return []

    def finish_batch(self, batch):
        self.finished_batches.append(list(batch))

    def on_log_event(self, effect):
        self.events.append(("log", effect.text))
        self.batch.append(effect.text)

    def on_charge_time(self, effect):
        self.events.append(("charge", effect.kind))
        yield effect.kind


class TestDispatch:
    def test_effects_dispatch_in_order(self):
        recorder = Recorder()
        list(recorder.execute([fx.LogEvent("a"), fx.LogEvent("b")]))
        assert recorder.events == [("log", "a"), ("log", "b")]

    def test_generator_handlers_are_delegated_to(self):
        recorder = Recorder()
        yielded = list(recorder.execute([fx.ChargeTime("resolution"),
                                         fx.LogEvent("after")]))
        assert yielded == ["resolution"]
        assert recorder.events == [("charge", "resolution"), ("log", "after")]

    def test_unknown_effect_raises_by_default(self):
        recorder = Recorder()
        with pytest.raises(NotImplementedError):
            list(recorder.execute([fx.SendTo(("T2",), object())]))

    def test_batch_finishes_after_all_effects(self):
        recorder = Recorder()
        list(recorder.execute([fx.LogEvent("x"), fx.LogEvent("y")]))
        assert recorder.finished_batches == [["x", "y"]]

    def test_nested_execute_uses_its_own_batch(self):
        class Nesting(Recorder):
            def on_charge_time(self, effect):
                yield from self.execute([fx.LogEvent("inner")])

        interpreter = Nesting()
        list(interpreter.execute([fx.LogEvent("before"),
                                  fx.ChargeTime("resolution"),
                                  fx.LogEvent("outer")]))
        # The inner batch completed (and finished) before the outer one,
        # and the outer batch kept collecting after the nested call.
        assert interpreter.finished_batches == [
            ["inner"], ["before", "outer"]]

    def test_interleaved_execute_generators_keep_separate_batches(self):
        # Two execute() generators on the same interpreter can be suspended
        # concurrently (a thread and its dispatcher both waiting out a
        # ChargeTime); completing in any order must not mix their batches.
        recorder = Recorder()
        first = recorder.execute([fx.ChargeTime("resolution"),
                                  fx.LogEvent("first-tail")])
        second = recorder.execute([fx.ChargeTime("resolution"),
                                   fx.LogEvent("second-tail")])
        next(first)                      # both suspend mid-batch
        next(second)
        list(first)                      # first completes while second waits
        list(second)
        assert recorder.finished_batches == [["first-tail"], ["second-tail"]]

    def test_abandoned_batch_is_not_finished(self):
        class Failing(Recorder):
            def on_send_to(self, effect):
                raise RuntimeError("boom")

        interpreter = Failing()
        with pytest.raises(RuntimeError):
            list(interpreter.execute([fx.LogEvent("x"),
                                      fx.SendTo(("T2",), object())]))
        assert interpreter.finished_batches == []


# ----------------------------------------------------------------------
# The concrete partition interpreter
# ----------------------------------------------------------------------
@pytest.fixture
def system():
    return make_simple_system(n_threads=2, resolution_time=0.5)


@pytest.fixture
def partition(system):
    return system.partitions["T1"]


def run_effects(partition, effects):
    partition.kernel.process(partition.execute_effects(effects))
    partition.kernel.run()


class TestPartitionInterpreter:
    def test_log_event_appends_to_partition_log(self, partition):
        run_effects(partition, [fx.LogEvent("hello")])
        assert "hello" in partition.log

    def test_send_to_reaches_the_network(self, system, partition):
        message = SuspendedMessage("A", "T1")
        run_effects(partition, [fx.SendTo(("T2",), message)])
        assert system.network.stats.by_type["SuspendedMessage"] == 1
        assert system.network.stats.by_link[("T1", "T2")] == 1

    def test_charge_time_advances_virtual_time(self, system, partition):
        run_effects(partition, [fx.ChargeTime("resolution")])
        assert system.now == pytest.approx(0.5)

    def test_charge_time_multiplies_by_count(self, system, partition):
        run_effects(partition, [fx.ChargeTime("resolution", count=3)])
        assert system.now == pytest.approx(1.5)

    def test_abort_nested_records_pending_abort(self, partition):
        run_effects(partition, [fx.AbortNested(("Inner",), "Outer", FAULT)])
        assert partition.pending_abort is not None
        assert partition.pending_abort.covers("Inner")
        assert partition.pending_abort.resume_action == "Outer"
        assert partition.pending_abort.outermost == "Inner"

    def test_interrupt_role_records_suspension(self, system, partition):
        run_effects(partition, [fx.InterruptRole("A", FAULT)])
        assert system.metrics.suspensions == 1

    def test_interrupts_are_deferred_to_batch_end(self, system, partition):
        # The suspension (the visible side effect of the interrupt request)
        # must be recorded only after the trailing ChargeTime let virtual
        # time pass — i.e. at t=0.5, not at t=0.
        seen = []
        original = system.metrics.record_suspension
        system.metrics.record_suspension = \
            lambda thread, action, now: seen.append(now)
        try:
            run_effects(partition, [fx.InterruptRole("A", FAULT),
                                    fx.ChargeTime("resolution")])
        finally:
            system.metrics.record_suspension = original
        assert seen == [pytest.approx(0.5)]

    def test_handle_resolved_for_unknown_frame_is_logged(self, partition):
        run_effects(partition,
                    [fx.HandleResolved("Ghost", FAULT, resolver="T1")])
        assert any("unknown frame" in line for line in partition.log)
