"""Tests for the open-loop production-cell workload scenario."""

import pytest

from repro.core.registry import ParamValidationError
from repro.productioncell.cell import ProductionCell
from repro.productioncell.failures import FAULT_NAMES
from repro.productioncell.workload import (
    draw_arrival_times,
    draw_fault_schedule,
    run_production_cell_point,
)


class TestDraws:
    def test_fault_schedule_is_pure_in_inputs(self):
        one = draw_fault_schedule(2026, 8, 0.5)
        two = draw_fault_schedule(2026, 8, 0.5)
        assert one == two
        assert draw_fault_schedule(2027, 8, 0.5) != one

    def test_fault_schedule_probability_extremes(self):
        assert draw_fault_schedule(2026, 6, 0.0) == []
        always = draw_fault_schedule(2026, 6, 1.0)
        assert [entry["cycle"] for entry in always] == [1, 2, 3, 4, 5, 6]
        assert all(entry["fault"] in FAULT_NAMES for entry in always)

    def test_arrival_times_monotone_and_pure(self):
        times = draw_arrival_times(2026, 10, 0.5)
        assert len(times) == 10
        assert all(later > earlier
                   for earlier, later in zip(times, times[1:]))
        assert times == draw_arrival_times(2026, 10, 0.5)

    def test_arrival_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate"):
            draw_arrival_times(2026, 3, 0.0)


class TestOpenLoopCell:
    def test_arrival_times_must_cover_cycles(self):
        cell = ProductionCell()
        with pytest.raises(ValueError, match="arrival times"):
            cell.run(3, arrival_times=[1.0, 2.0])

    def test_arrivals_delay_cycle_starts(self):
        closed = ProductionCell().run(2)
        spaced = ProductionCell().run(2, arrival_times=[5.0, 50.0])
        assert spaced.completed_cycles == closed.completed_cycles
        assert spaced.total_time > closed.total_time
        assert spaced.total_time >= 50.0


class TestProductionCellPoint:
    def test_point_is_oracle_clean_and_consistent(self):
        row = run_production_cell_point(seed=2026)
        assert row["violations"] == []
        outcomes = (row["cycles_succeeded"] + row["cycles_recovered"]
                    + row["cycles_skipped"] + row["cycles_failed"])
        assert outcomes == row["n_cycles"]
        assert row["faults_fired"] <= len(row["planned_faults"])

    def test_rows_are_deterministic(self):
        assert run_production_cell_point(seed=2027) == \
            run_production_cell_point(seed=2027)

    def test_faults_drive_recovery_somewhere(self):
        # Across a few seeds, at least one run must fire faults and
        # resolve exceptions (the case study is pointless otherwise).
        rows = [run_production_cell_point(seed=seed)
                for seed in (2026, 2027, 2028, 2029)]
        assert any(row["faults_fired"] > 0 for row in rows)
        assert any(row["exceptions_raised"] > 0 for row in rows)
        assert all(row["violations"] == [] for row in rows)

    def test_baseline_algorithms_run_clean(self):
        for algorithm in ("campbell-randell", "romanovsky96"):
            row = run_production_cell_point(seed=2026, algorithm=algorithm)
            assert row["violations"] == []

    def test_registered_through_the_plugin_path(self):
        from repro.bench.engine import REGISTRY, run_scenario
        scenario = REGISTRY.get("production_cell")
        assert scenario.validate_grid(scenario.grid) == []
        with pytest.raises(ParamValidationError) as excinfo:
            run_scenario("production_cell", points=[{"seed": "xxvi"}])
        assert "parameter 'seed' expects int" in str(excinfo.value)
