"""Concurrent device faults in the case study: the Figure 7 graph at work.

The deepest behaviour of the case study: two device faults detected by two
*different* roles of ``Move_Loaded_Table`` at (nearly) the same instant must
be resolved through the Figure 7 graph into a single covering exception,
whose handler aborts the nested action; the resulting µ then climbs the
nesting chain ``Move_Loaded_Table`` → ``Unload_Table`` →
``Table_Press_Robot``, where the cycle is skipped — and the next cycle runs
normally.
"""

from repro.productioncell import (
    FailureInjector,
    ProductionCell,
    RM_STOP,
    S_STUCK,
    TABLE_AND_SENSOR_FAILURES,
    build_move_loaded_table_graph,
)


class TestConcurrentDeviceFaults:
    def make_cell(self):
        injector = FailureInjector()
        injector.schedule(1, "rm_stop")                      # rotation motor stops
        injector.schedule(1, "s_stuck", device="table")      # sensor stuck at 0
        injector.schedule(1, "rm_nmove", persistent=True)    # the retry fails too
        return ProductionCell(injector=injector), injector

    def test_graph_resolves_the_pair_as_table_and_sensor_failures(self):
        graph = build_move_loaded_table_graph()
        assert graph.resolve([RM_STOP, S_STUCK]) == TABLE_AND_SENSOR_FAILURES

    def test_concurrent_faults_resolve_and_undo_the_cycle(self):
        cell, injector = self.make_cell()
        stats = cell.run(cycles=2)
        # Both faults actually fired and surfaced as exceptions.
        assert injector.summary().get("rm_stop") == 1
        assert injector.summary().get("s_stuck") == 1
        assert stats.exceptions_raised >= 2
        # The covering exception's handler gave up on the table positioning,
        # so µ was coordinated and signalled up the nesting chain.
        assert "dual-motor-abort" in stats.handled_log
        assert stats.signalled.get("mu", 0) >= 1
        assert "cycle-skipped" in stats.handled_log
        # No cycle fails outright, and the fault-free second cycle forges.
        assert stats.cycles_failed == 0
        assert stats.blanks_forged >= 1
        assert stats.cycles_succeeded >= 1

    def test_resolution_happened_at_least_once_per_affected_level(self):
        cell, _injector = self.make_cell()
        stats = cell.run(cycles=1)
        # One resolution in Move_Loaded_Table plus the escalations above it.
        assert stats.resolutions >= 2
        assert stats.cycles_failed == 0

    def test_second_run_is_deterministic(self):
        first_cell, _ = self.make_cell()
        second_cell, _ = self.make_cell()
        first = first_cell.run(cycles=2)
        second = second_cell.run(cycles=2)
        assert first.handled_log == second.handled_log
        assert first.signalled == second.signalled
        assert first.total_time == second.total_time
