"""Tests for the production-cell case study: plant, failures, graphs, control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.productioncell import (
    A1_SENSOR,
    Blank,
    CS_FAULT,
    DUAL_MOTOR_FAILURES,
    FailureInjector,
    FAULT_NAMES,
    L_MES,
    L_PLATE_INT,
    MOVE_LOADED_TABLE_PRIMITIVES,
    NCS_FAIL,
    Plant,
    ProductionCell,
    RM_STOP,
    RT_EXC,
    S_STUCK,
    SENSOR_OR_LOST_PLATE,
    T_SENSOR,
    TABLE_AND_SENSOR_FAILURES,
    THREADS,
    TWO_UNRELATED,
    VM_NMOVE,
    VM_STOP,
    build_move_loaded_table_graph,
    build_table_press_robot_graph,
    build_unload_table_graph,
    exception_catalogue,
)
from repro.productioncell.controller import ProductionCellController


# ----------------------------------------------------------------------
# Failure injector
# ----------------------------------------------------------------------
class TestFailureInjector:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            FailureInjector().schedule(1, "not_a_fault")

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            FailureInjector().schedule(-1, "vm_stop")

    def test_fault_fires_only_in_its_cycle(self):
        injector = FailureInjector().schedule(2, "vm_stop")
        injector.begin_cycle(1)
        assert not injector.should_fail("vm_stop")
        injector.begin_cycle(2)
        assert injector.should_fail("vm_stop")

    def test_transient_fault_fires_once(self):
        injector = FailureInjector().schedule(1, "vm_stop")
        injector.begin_cycle(1)
        assert injector.should_fail("vm_stop")
        assert not injector.should_fail("vm_stop")

    def test_persistent_fault_keeps_firing(self):
        injector = FailureInjector().schedule(1, "vm_nmove", persistent=True)
        injector.begin_cycle(1)
        assert injector.should_fail("vm_nmove")
        assert injector.should_fail("vm_nmove")

    def test_device_scoping(self):
        injector = FailureInjector().schedule(1, "l_plate", device="table")
        injector.begin_cycle(1)
        assert not injector.should_fail("l_plate", device="robot")
        assert injector.should_fail("l_plate", device="table")

    def test_summary_and_pending(self):
        injector = FailureInjector()
        injector.schedule_many([(1, "vm_stop"), (1, "s_stuck"), (2, "rm_stop")])
        assert len(injector.pending_for_cycle(1)) == 2
        injector.begin_cycle(1)
        injector.should_fail("vm_stop")
        assert injector.summary() == {"vm_stop": 1}
        injector.clear_all()
        assert injector.pending_for_cycle(2) == []

    def test_fault_names_cover_the_paper_list(self):
        assert set(FAULT_NAMES) == {
            "vm_stop", "rm_stop", "vm_nmove", "rm_nmove", "s_stuck",
            "l_plate", "cs_fault", "l_mes", "rt_exc"}


# ----------------------------------------------------------------------
# Plant devices
# ----------------------------------------------------------------------
class TestPlant:
    def make_plant(self, injector=None):
        return Plant(injector or FailureInjector())

    def test_blank_travels_through_a_fault_free_cycle(self):
        plant = self.make_plant()
        blank = Blank()
        assert plant.feed_belt.insert_blank(blank)
        conveyed = plant.feed_belt.convey_to_table()
        plant.table.load(conveyed)
        assert plant.table.move_up() and plant.table.rotate_to_robot()
        assert plant.table.at_robot_position
        assert plant.robot.extend_arm1()
        assert plant.robot.grab_from_table(plant.table)
        plant.robot.retract_arm1()
        assert plant.robot.rotate_to_press()
        assert plant.robot.place_in_press(plant.press)
        assert plant.press.forge()
        plant.robot.extend_arm2()
        assert plant.robot.grab_from_press(plant.press)
        assert plant.robot.place_on_deposit(plant.deposit_belt)
        delivered = plant.deposit_belt.convey_to_environment()
        assert delivered is blank and delivered.forged
        assert plant.forged_count == 1

    def test_red_insertion_light_blocks_blank(self):
        plant = self.make_plant()
        plant.feed_belt.light.set_green(False)
        assert not plant.feed_belt.insert_blank(Blank())
        assert not plant.feed_belt.occupied

    def test_motor_fault_blocks_table_movement(self):
        injector = FailureInjector().schedule(1, "vm_stop")
        plant = self.make_plant(injector)
        injector.begin_cycle(1)
        assert not plant.table.move_up()
        assert plant.table.height == plant.table.LOW
        # The transient fault is consumed; a retry succeeds.
        assert plant.table.move_up()

    def test_stuck_sensor_reads_zero(self):
        injector = FailureInjector().schedule(1, "s_stuck", device="table")
        plant = self.make_plant(injector)
        injector.begin_cycle(1)
        plant.table.move_up()
        readings = plant.table.read_position_sensors()
        assert readings["height"] == 0 and plant.table.height == plant.table.HIGH

    def test_lost_plate_during_grab(self):
        injector = FailureInjector().schedule(1, "l_plate", device="table")
        plant = self.make_plant(injector)
        injector.begin_cycle(1)
        plant.table.load(Blank())
        assert not plant.robot.grab_from_table(plant.table)
        assert plant.robot.arm1_load is None

    def test_press_forge_requires_a_plate(self):
        plant = self.make_plant()
        assert not plant.press.forge()
        plant.press.load(Blank())
        assert plant.press.forge()
        assert plant.press.plate.forged

    def test_deposit_belt_respects_traffic_light(self):
        plant = self.make_plant()
        plant.deposit_belt.load(Blank())
        plant.deposit_belt.light.set_green(False)
        assert plant.deposit_belt.convey_to_environment() is None
        plant.deposit_belt.light.set_green(True)
        assert plant.deposit_belt.convey_to_environment() is not None

    def test_operation_logs_recorded(self):
        plant = self.make_plant()
        plant.table.move_up()
        plant.table.move_down()
        assert plant.table.operations == ["move_up", "move_down"]


# ----------------------------------------------------------------------
# Exception graphs of the case study (Figure 7)
# ----------------------------------------------------------------------
class TestCaseStudyGraphs:
    def test_move_loaded_table_graph_has_nine_primitives(self):
        graph = build_move_loaded_table_graph()
        primitive_names = {e.name for e in graph.primitives()}
        assert primitive_names == {e.name for e in MOVE_LOADED_TABLE_PRIMITIVES}

    def test_dual_motor_failures_covers_motor_pairs(self):
        graph = build_move_loaded_table_graph()
        assert graph.resolve([VM_STOP, RM_STOP]) == DUAL_MOTOR_FAILURES
        assert graph.resolve([VM_NMOVE, RM_STOP]) == DUAL_MOTOR_FAILURES

    def test_motor_plus_sensor_resolves_to_table_and_sensor(self):
        graph = build_move_loaded_table_graph()
        assert graph.resolve([VM_STOP, S_STUCK]) == TABLE_AND_SENSOR_FAILURES

    def test_sensor_and_lost_plate(self):
        graph = build_move_loaded_table_graph()
        assert graph.resolve([S_STUCK, L_PLATE_INT]) == SENSOR_OR_LOST_PLATE

    def test_unrelated_pair_resolves_to_two_unrelated(self):
        graph = build_move_loaded_table_graph()
        assert graph.resolve([CS_FAULT, L_MES]) == TWO_UNRELATED
        assert graph.resolve([L_MES, RT_EXC]) == TWO_UNRELATED

    def test_cross_category_pairs_fall_back_to_universal(self):
        graph = build_move_loaded_table_graph()
        assert graph.resolve([VM_STOP, RT_EXC]) == graph.universal

    def test_other_graphs_validate(self):
        build_unload_table_graph().validate()
        build_table_press_robot_graph().validate()

    def test_catalogue_names_are_unique_and_complete(self):
        catalogue = exception_catalogue()
        assert "vm_stop" in catalogue and "T_SENSOR" in catalogue
        assert len(catalogue) == 17

    def test_controller_action_definitions_nest_consistently(self):
        controller = ProductionCellController(Plant(FailureInjector()))
        actions = {a.name: a for a in controller.all_actions()}
        actions["Move_Loaded_Table"].validate_nesting(actions["Unload_Table"])
        actions["Unload_Table"].validate_nesting(actions["Table_Press_Robot"])
        actions["Press_Plate"].validate_nesting(actions["Table_Press_Robot"])


# ----------------------------------------------------------------------
# End-to-end production campaigns
# ----------------------------------------------------------------------
class TestProductionCampaigns:
    def test_fault_free_campaign_forges_every_blank(self):
        stats = ProductionCell().run(cycles=3)
        assert stats.cycles_succeeded == 3
        assert stats.blanks_forged == 3
        assert stats.exceptions_raised == 0

    def test_transient_motor_fault_is_recovered_in_place(self):
        injector = FailureInjector().schedule(2, "vm_stop")
        stats = ProductionCell(injector=injector).run(cycles=3)
        assert stats.blanks_forged == 3
        assert stats.exceptions_raised >= 1
        assert stats.resolutions >= 1
        assert "motor-retry-ok" in stats.handled_log

    def test_stuck_sensor_recalibrated(self):
        injector = FailureInjector().schedule(1, "s_stuck")
        stats = ProductionCell(injector=injector).run(cycles=2)
        assert "sensor-recalibrated" in stats.handled_log
        assert stats.cycles_failed == 0

    def test_unrecoverable_motor_fault_escalates_to_t_sensor(self):
        injector = FailureInjector()
        injector.schedule(1, "vm_stop")
        injector.schedule(1, "vm_nmove", persistent=True)
        stats = ProductionCell(injector=injector).run(cycles=2)
        assert stats.signalled.get("NCS_FAIL", 0) >= 1
        assert stats.signalled.get("T_SENSOR", 0) >= 1
        assert stats.cycles_recovered >= 1
        assert stats.cycles_failed == 0

    def test_lost_plate_escalates_but_cell_keeps_running(self):
        injector = FailureInjector().schedule(2, "l_plate", device="table")
        stats = ProductionCell(injector=injector).run(cycles=3)
        assert stats.cycles_failed == 0
        assert stats.blanks_forged >= 2
        assert stats.exceptions_raised >= 1

    def test_invalid_cycle_count_rejected(self):
        with pytest.raises(ValueError):
            ProductionCell().run(cycles=0)

    def test_six_controller_threads_exist(self):
        cell = ProductionCell()
        assert set(cell.system.partitions) == set(THREADS)
        assert len(THREADS) == 6

    @pytest.mark.parametrize("algorithm",
                             ["ours", "campbell-randell", "romanovsky96"])
    def test_campaign_under_every_algorithm(self, algorithm):
        injector = FailureInjector().schedule(1, "vm_stop")
        stats = ProductionCell(injector=injector,
                               algorithm=algorithm).run(cycles=2)
        assert stats.cycles_failed == 0
        assert stats.blanks_forged == 2

    @given(fault=st.sampled_from(["vm_stop", "rm_stop", "s_stuck"]),
           cycle=st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_property_single_recoverable_fault_never_stops_the_cell(self, fault,
                                                                    cycle):
        injector = FailureInjector().schedule(cycle, fault)
        stats = ProductionCell(injector=injector).run(cycles=3)
        assert stats.cycles_failed == 0
        assert stats.blanks_forged >= 2
