"""Unit tests for the flight recorder ring and span assembly."""

from __future__ import annotations

import pytest

from repro.obs import FlightRecorder, build_spans, span_outcomes
from repro.obs.spans import MARKER_KINDS


def entered(t, action="A", instance="i0", thread="T1"):
    return {"t": t, "kind": "action.entered", "action": action,
            "instance": instance, "thread": thread}


def concluded(t, action="A", instance="i0", thread="T1", status="success",
              **extra):
    event = {"t": t, "kind": "action.concluded", "action": action,
             "instance": instance, "thread": thread, "status": status}
    event.update(extra)
    return event


class TestFlightRecorder:
    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError, match=">= 1"):
            FlightRecorder(0)

    def test_small_run_is_not_truncated(self):
        ring = FlightRecorder(capacity=4)
        for index in range(3):
            ring.append({"t": float(index), "kind": "x"})
        assert len(ring) == 3
        dump = ring.dump()
        assert dump["capacity"] == 4
        assert dump["observed"] == 3
        assert dump["truncated"] is False
        assert [event["t"] for event in dump["events"]] == [0.0, 1.0, 2.0]

    def test_overflow_keeps_the_terminal_window(self):
        ring = FlightRecorder(capacity=4)
        for index in range(10):
            ring.append({"t": float(index), "kind": "x"})
        assert len(ring) == 4
        dump = ring.dump()
        assert dump["observed"] == 10
        assert dump["truncated"] is True
        # Oldest first, and always the *last* N events.
        assert [event["t"] for event in dump["events"]] == [6.0, 7.0,
                                                            8.0, 9.0]


class TestBuildSpans:
    def test_entered_concluded_pairing(self):
        events = [entered(1.0),
                  concluded(3.5, status="recovered", resolved="e1",
                            signalled="phi")]
        completed, still_open = build_spans(events)
        assert still_open == []
        (span,) = completed
        assert (span.action, span.instance, span.thread) == ("A", "i0", "T1")
        assert span.start == 1.0
        assert span.end == 3.5
        assert span.duration == pytest.approx(2.5)
        assert span.status == "recovered"
        assert span.resolved == "e1"
        assert span.signalled == "phi"
        row = span.to_dict()
        assert row["duration"] == pytest.approx(2.5)
        assert row["markers"] == []

    def test_same_action_on_two_threads_is_two_spans(self):
        events = [entered(1.0, thread="T1"), entered(1.0, thread="T2"),
                  concluded(2.0, thread="T1"), concluded(3.0, thread="T2")]
        completed, still_open = build_spans(events)
        assert still_open == []
        assert sorted(span.thread for span in completed) == ["T1", "T2"]

    def test_markers_attach_to_the_open_span_of_their_key(self):
        raised = {"t": 1.5, "kind": "action.raised", "action": "A",
                  "instance": "i0", "thread": "T1", "exception": "e1"}
        other = {"t": 1.6, "kind": "action.raised", "action": "A",
                 "instance": "i0", "thread": "T2", "exception": "e2"}
        events = [entered(1.0), raised, other, concluded(2.0)]
        completed, _open = build_spans(events)
        assert completed[0].markers == [raised]
        assert raised["kind"] in MARKER_KINDS

    def test_unmatched_concluded_closes_a_placeholder(self):
        # The matching "entered" was evicted from a flight ring (or the
        # observation attached mid-run): a zero-length span still renders.
        completed, still_open = build_spans([concluded(4.0)])
        assert still_open == []
        (span,) = completed
        assert span.start == span.end == 4.0
        assert span.duration == 0.0

    def test_still_open_spans_are_sorted_and_unfinished(self):
        events = [entered(2.0, thread="T2"), entered(1.0, thread="T1")]
        completed, still_open = build_spans(events)
        assert completed == []
        assert [span.thread for span in still_open] == ["T1", "T2"]
        assert all(span.end is None and span.duration is None
                   for span in still_open)


class TestSpanOutcomes:
    def test_counts_completed_spans_only(self):
        events = [entered(1.0, thread="T1"), entered(1.0, thread="T2"),
                  entered(1.0, thread="T3"),
                  concluded(2.0, thread="T1", status="success"),
                  concluded(3.0, thread="T2", status="recovered")]
        completed, still_open = build_spans(events)
        assert span_outcomes(completed + still_open) == {
            "recovered": 1, "success": 1}

    def test_missing_status_counts_as_unknown(self):
        event = concluded(1.0)
        del event["status"]
        completed, _open = build_spans([event])
        assert span_outcomes(completed) == {"unknown": 1}
