"""Tests for trace exporters, the schema checker, and the obs CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import read_jsonl, validate_chrome, write_flight_dump, \
    write_jsonl
from repro.obs.__main__ import main as obs_main
from repro.obs.export import (chrome_trace, diff_summaries, load_trace,
                              summarize_events, summarize_path)

#: A small hand-written stream touching every exporter code path: a
#: completed span with a marker, an open span, a message send/deliver
#: flow, a drop, a lock event, a job event, and opt-in kernel steps.
EVENTS = [
    {"t": 0.0, "kind": "kernel.step", "priority": 0, "eid": 1,
     "event": "Timeout"},
    {"t": 0.5, "kind": "job.submitted", "action": "A", "instance": "i0"},
    {"t": 1.0, "kind": "action.entered", "action": "A", "instance": "i0",
     "thread": "T1"},
    {"t": 1.0, "kind": "action.entered", "action": "A", "instance": "i0",
     "thread": "T2"},
    {"t": 1.2, "kind": "message.sent", "src": "T1", "dst": "T2",
     "type": "ExceptionRaised", "seq": 1},
    {"t": 1.4, "kind": "message.delivered", "src": "T1", "dst": "T2",
     "type": "ExceptionRaised", "seq": 1},
    {"t": 1.5, "kind": "message.dropped", "src": "T2", "dst": "T1",
     "type": "Ack", "seq": 2, "reason": "crash"},
    {"t": 1.6, "kind": "lock.granted", "object": "o1", "transaction": "tx1",
     "mode": "write"},
    {"t": 1.8, "kind": "action.raised", "action": "A", "instance": "i0",
     "thread": "T1", "exception": "e1"},
    {"t": 2.5, "kind": "action.concluded", "action": "A", "instance": "i0",
     "thread": "T1", "status": "recovered"},
]

TIMELINE = {"interval": 1.0, "samples": 3,
            "series": {"in_flight": [[0.0, 0.0], [1.0, 2.0], [2.0, 2.0]]}}


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_jsonl(EVENTS, path)
        assert read_jsonl(path) == EVENTS

    def test_flight_dump_gets_a_header_record(self, tmp_path):
        path = str(tmp_path / "run.flight.jsonl")
        dump = {"capacity": 4, "observed": 12, "truncated": True,
                "events": EVENTS[-2:]}
        write_flight_dump(dump, path)
        records = read_jsonl(path)
        assert records[0] == {"kind": "flight.header", "capacity": 4,
                              "observed": 12, "truncated": True}
        assert records[1:] == EVENTS[-2:]
        # Summaries skip the header rather than counting it as an event.
        assert summarize_events(records)["events"] == 2

    def test_load_trace_detects_both_formats(self, tmp_path):
        jsonl = str(tmp_path / "a.jsonl")
        write_jsonl(EVENTS, jsonl)
        form, payload = load_trace(jsonl)
        assert (form, payload) == ("jsonl", EVENTS)

        chrome = str(tmp_path / "a.trace.json")
        with open(chrome, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(EVENTS), handle)
        form, payload = load_trace(chrome)
        assert form == "chrome"
        assert "traceEvents" in payload

        single = str(tmp_path / "one.json")
        with open(single, "w", encoding="utf-8") as handle:
            json.dump(EVENTS[0], handle)
        assert load_trace(single)[0] == "jsonl"

        bogus = str(tmp_path / "bogus.json")
        with open(bogus, "w", encoding="utf-8") as handle:
            json.dump({"not": "a trace"}, handle)
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(bogus)


class TestChromeTrace:
    def test_document_is_schema_valid(self):
        doc = chrome_trace(EVENTS, timeline=TIMELINE)
        assert validate_chrome(doc) == []

    def test_spans_flows_and_counters(self):
        doc = chrome_trace(EVENTS, timeline=TIMELINE)
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], []).append(event)
        # One complete slice per span (T1 closed, T2 still open).
        slices = by_phase["X"]
        assert len(slices) == 2
        closed = next(s for s in slices if not s["args"]["open"])
        assert closed["args"]["status"] == "recovered"
        assert closed["dur"] == pytest.approx(1.5e6)
        # The send/deliver pair became one flow with a shared id.
        assert by_phase["s"][0]["id"] == by_phase["f"][0]["id"] == 1
        # Timeline series render as counter samples.
        counters = by_phase["C"]
        assert [c["args"]["value"] for c in counters] == [0.0, 2.0, 2.0]
        # The marker and the drop/lock/job instants are all there.
        instant_names = {event["name"] for event in by_phase["i"]}
        assert {"action.raised", "message.dropped", "lock.granted",
                "job.submitted"} <= instant_names
        # Track names are declared as thread metadata.
        track_names = {event["args"]["name"] for event in by_phase["M"]
                       if event["name"] == "thread_name"}
        assert {"T1", "T2", "workload", "objects"} <= track_names

    def test_kernel_steps_are_counted_not_rendered(self):
        doc = chrome_trace(EVENTS)
        assert doc["otherData"]["kernel_steps"] == 1
        assert all(event.get("name") != "kernel.step"
                   for event in doc["traceEvents"])
        assert doc["otherData"]["spans_completed"] == 1
        assert doc["otherData"]["spans_open"] == 1


class TestValidateChrome:
    def test_rejects_malformed_documents(self):
        assert validate_chrome([]) == \
            ["top level must be an object, got list"]
        assert validate_chrome({"traceEvents": "nope"}) == \
            ["'traceEvents' must be a list"]

    @pytest.mark.parametrize("event,needle", [
        ("not-an-object", "not an object"),
        ({"ph": "Z", "name": "x", "pid": 1, "ts": 0}, "unknown phase"),
        ({"ph": "i", "name": 7, "pid": 1, "ts": 0}, "'name' must be"),
        ({"ph": "i", "name": "x", "pid": "1", "ts": 0}, "'pid' must be"),
        ({"ph": "i", "name": "x", "pid": 1}, "'ts' must be a number"),
        ({"ph": "i", "name": "x", "pid": 1, "ts": -1.0}, "non-negative"),
        ({"ph": "X", "name": "x", "pid": 1, "ts": 0}, "'dur'"),
        ({"ph": "s", "name": "x", "pid": 1, "ts": 0}, "needs 'id'"),
    ])
    def test_flags_each_structural_problem(self, event, needle):
        problems = validate_chrome({"traceEvents": [event]})
        assert len(problems) == 1
        assert needle in problems[0]

    def test_metadata_events_need_no_timestamp(self):
        doc = {"traceEvents": [{"ph": "M", "name": "process_name",
                                "pid": 1, "args": {"name": "repro"}}]}
        assert validate_chrome(doc) == []


class TestSummaries:
    def test_summarize_events_shape(self):
        summary = summarize_events(EVENTS)
        assert summary["format"] == "jsonl"
        assert summary["events"] == len(EVENTS)
        assert summary["kinds"]["action.entered"] == 2
        assert summary["categories"]["message"] == 3
        assert summary["spans"] == {
            "completed": 1, "open": 1,
            "outcomes": {"recovered": 1},
            "max_duration": pytest.approx(1.5)}
        assert summary["time"] == {"start": 0.0, "end": 2.5}

    def test_diff_summaries_flat_dotted_leaves(self):
        base = summarize_events(EVENTS)
        assert diff_summaries(base, summarize_events(EVENTS)) == {}
        delta = diff_summaries(base, summarize_events(EVENTS[:-1]))
        assert delta["events"] == [10, 9]
        assert delta["spans.completed"] == [1, 0]
        assert delta["spans.outcomes.recovered"] == [1, None]


class TestObsCli:
    def write_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_jsonl(EVENTS, path)
        return path

    def test_summarize(self, tmp_path, capsys):
        assert obs_main(["summarize", self.write_events(tmp_path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == len(EVENTS)

    def test_convert_writes_a_valid_chrome_trace(self, tmp_path, capsys):
        out = str(tmp_path / "out.trace.json")
        assert obs_main(["convert", self.write_events(tmp_path),
                         "-o", out]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert validate_chrome(doc) == []
        # Converting the converted file is refused: already Chrome form.
        assert obs_main(["convert", out, "-o", out]) == 2

    def test_diff_exit_status_reflects_differences(self, tmp_path, capsys):
        a = self.write_events(tmp_path)
        b = str(tmp_path / "short.jsonl")
        write_jsonl(EVENTS[:-1], b)
        assert obs_main(["diff", a, a]) == 0
        assert json.loads(capsys.readouterr().out) == {}
        assert obs_main(["diff", a, b]) == 1
        delta = json.loads(capsys.readouterr().out)
        assert delta["events"] == [10, 9]

    def test_summarize_reads_flight_dumps(self, tmp_path, capsys):
        path = str(tmp_path / "run.flight.jsonl")
        write_flight_dump({"capacity": 8, "observed": 2, "truncated": False,
                           "events": EVENTS[-2:]}, path)
        assert obs_main(["summarize", path]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == 2
        assert summarize_path(path) == summary
