"""Integration: observing real runs never changes them, and the
collected spans/metrics/flight dumps reconcile with the run's own
telemetry (the acceptance criteria of the observability layer)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.bench.engine import ScenarioConfig, export_capture, run_scenario
from repro.net import ConstantLatency
from repro.obs import build_spans, span_outcomes, validate_chrome
from repro.runtime import DistributedCASystem, RuntimeConfig

#: One small capacity point: fast, but wide enough to exercise raises,
#: recovery, admission queueing, and multi-instance overlap.
POINT = {"offered_load": 2.0, "n_instances": 16, "seed": 7}


@pytest.fixture(scope="module")
def traced_run():
    """The same capacity point run untraced and under a full capture."""
    plain = run_scenario("capacity", points=[POINT])
    with obs.capture(obs.ObsConfig()) as cap:
        traced = run_scenario("capacity", points=[POINT])
    return plain, traced, cap


class TestNeverPerturbs:
    def test_traced_row_is_identical(self, traced_run):
        plain, traced, _cap = traced_run
        assert traced == plain

    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.active() is None
        system = DistributedCASystem(RuntimeConfig(),
                                     latency=ConstantLatency(0.05))
        assert system.observation is None

    def test_capture_adopts_systems_and_uninstalls_cleanly(self):
        with obs.capture() as cap:
            assert obs.enabled()
            assert obs.active() is cap
            system = DistributedCASystem(RuntimeConfig(),
                                         latency=ConstantLatency(0.05))
            assert system.observation is cap.observations[-1]
        assert not obs.enabled()

    def test_captures_do_not_nest(self):
        with obs.capture():
            with pytest.raises(RuntimeError, match="do not nest"):
                with obs.capture():
                    pass  # pragma: no cover
        # The failed inner enter must not have torn down the outer scope
        # prematurely or left a stale ambient capture behind.
        assert not obs.enabled()


class TestSpanReconciliation:
    def test_span_outcomes_match_run_metrics(self, traced_run):
        # The runtime records exactly one outcome per concluded
        # participation and the tracer exactly one span for it, so the
        # two censuses must agree status by status.
        _plain, traced, cap = traced_run
        completed, still_open = build_spans(cap.events())
        assert still_open == []
        assert span_outcomes(completed) == traced[0]["outcomes"]
        assert len(completed) == sum(traced[0]["outcomes"].values())

    def test_message_counters_match_network_statistics(self, traced_run):
        _plain, _traced, cap = traced_run
        (observation,) = cap.observations
        stats = observation.system.network.stats
        snapshot = observation.metrics.snapshot()
        sent = sum(row["value"]
                   for row in snapshot["counters"]["messages_sent_total"])
        assert sent == stats.sent
        delivered = snapshot["counters"]["messages_delivered_total"]
        assert delivered[0]["value"] == stats.delivered

    def test_timelines_track_workload_and_network_series(self, traced_run):
        _plain, _traced, cap = traced_run
        series = cap.metrics_snapshot()["timeline"]["series"]
        for name in ("in_flight", "queue_depth", "messages_sent",
                     "messages_delivered"):
            assert series[name], name
        # The last messages_sent sample has caught up with the total.
        (observation,) = cap.observations
        assert series["messages_sent"][-1][1] \
            <= observation.system.network.stats.sent


class TestFlightRecorder:
    def test_every_observed_system_dumps(self, traced_run):
        _plain, _traced, cap = traced_run
        (dump,) = cap.flight_dumps()
        assert dump["observed"] == len(cap.events())
        assert len(dump["events"]) <= dump["capacity"]
        # The ring holds the *terminal* window of the full stream.
        assert dump["events"] == cap.events()[-len(dump["events"]):]


class TestExports:
    def test_chrome_trace_reconciles_and_validates(self, traced_run):
        _plain, traced, cap = traced_run
        doc = cap.chrome_trace()
        assert validate_chrome(doc) == []
        assert doc["otherData"]["spans_open"] == 0
        assert doc["otherData"]["spans_completed"] \
            == sum(traced[0]["outcomes"].values())

    def test_engine_export_writes_all_artefacts(self, tmp_path):
        directory = str(tmp_path)
        config = ScenarioConfig(obs=obs.ObsConfig(), export_dir=directory)
        rows = run_scenario("capacity", points=[POINT], config=config)
        assert rows == run_scenario("capacity", points=[POINT])
        with open(tmp_path / "capacity.trace.json",
                  encoding="utf-8") as handle:
            assert validate_chrome(json.load(handle)) == []
        with open(tmp_path / "capacity.metrics.json",
                  encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == 1
        events = obs.read_jsonl(str(tmp_path / "capacity.events.jsonl"))
        completed, _open = build_spans(events)
        assert span_outcomes(completed) == rows[0]["outcomes"]
        exposition = (tmp_path / "capacity.prom").read_text()
        assert "# TYPE repro_actions_entered_total counter" in exposition

    def test_export_capture_returns_the_written_paths(self, tmp_path):
        with obs.capture() as cap:
            run_scenario("capacity", points=[POINT])
        paths = export_capture(cap, "demo", str(tmp_path))
        assert sorted(path.rsplit("/", 1)[1] for path in paths) == [
            "demo.events.jsonl", "demo.metrics.json", "demo.prom",
            "demo.trace.json"]


class TestDigestInvariance:
    def test_conformance_digest_unchanged_under_observation(self):
        # The strongest no-perturbation statement: a golden-trace case
        # re-run under a full ambient capture reproduces the committed
        # fixture bit for bit (CI re-checks this via
        # ``python -m repro.conformance --check --obs``).
        from repro.conformance import CASES, load_fixture, run_case
        fixture = load_fixture("churn_ours")
        assert fixture is not None
        with obs.capture(obs.ObsConfig()):
            document = run_case(CASES["churn_ours"])
        assert document["digest"] == fixture["digest"]
        assert document["schema"] == fixture["schema"]
