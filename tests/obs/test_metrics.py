"""Unit tests for the metrics registry (obs/metrics.py).

The registry follows the repo's established merge algebra — the
``snapshot()`` / ``restore()`` / ``merge()`` triple that ``RunMetrics``,
``MessageStatistics``, and ``AdmissionStats`` already speak — so these
tests pin the same contracts: exact round-trips, associative summing,
and loud failures on incompatible grids.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timeline


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative_increments(self):
        counter = Counter()
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.add(-1.5)
        assert gauge.value == pytest.approx(2.5)


class TestTimeline:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            Timeline(0.0)
        with pytest.raises(ValueError, match="positive"):
            Timeline(-1.0)

    def test_maybe_sample_catches_up_every_grid_point(self):
        timeline = Timeline(1.0)
        level = {"value": 0.0}
        timeline.track("level", lambda: level["value"])
        # An idle stretch is back-filled at the next emission: the
        # sampler reads current state, which held throughout the idle.
        level["value"] = 7.0
        timeline.maybe_sample(2.5)
        assert timeline.series["level"] == [(0.0, 7.0), (1.0, 7.0),
                                            (2.0, 7.0)]
        # Same time again: the grid already caught up, nothing new.
        timeline.maybe_sample(2.5)
        assert len(timeline.series["level"]) == 3
        level["value"] = 1.0
        timeline.maybe_sample(3.0)
        assert timeline.series["level"][-1] == (3.0, 1.0)

    def test_no_trackers_means_no_samples(self):
        timeline = Timeline(1.0)
        timeline.maybe_sample(100.0)
        assert timeline.snapshot()["samples"] == 0
        # The empty ticker never advanced, so a late tracker back-fills
        # the whole grid from t=0 on its first emission.
        timeline.track("late", lambda: 1.0)
        timeline.maybe_sample(100.0)
        assert len(timeline.series["late"]) == 101

    def test_snapshot_restore_round_trip(self):
        timeline = Timeline(0.5)
        timeline.track("depth", lambda: 3.0)
        timeline.maybe_sample(1.6)
        snapshot = json.loads(json.dumps(timeline.snapshot()))
        restored = Timeline(0.5)
        restored.restore(snapshot)
        assert restored.snapshot() == timeline.snapshot()

    def test_merge_sums_tick_aligned(self):
        left = Timeline(1.0)
        left.track("depth", lambda: 2.0)
        left.maybe_sample(1.0)            # (0, 2), (1, 2)
        right = Timeline(1.0)
        right.track("depth", lambda: 5.0)
        right.maybe_sample(2.0)           # (0, 5), (1, 5), (2, 5)
        left.merge(right.snapshot())
        assert left.series["depth"] == [(0.0, 7.0), (1.0, 7.0), (2.0, 5.0)]

    def test_interval_mismatch_is_loud(self):
        coarse = Timeline(1.0)
        fine = Timeline(0.5)
        with pytest.raises(ValueError, match="intervals differ"):
            coarse.merge(fine.snapshot())
        with pytest.raises(ValueError, match="intervals differ"):
            coarse.restore(fine.snapshot())

    def test_empty_run_snapshot_merges_as_noop(self):
        timeline = Timeline(1.0)
        timeline.track("depth", lambda: 2.0)
        timeline.maybe_sample(1.0)
        before = timeline.snapshot()
        timeline.merge(Timeline(1.0).snapshot())
        assert timeline.snapshot() == before


class TestMetricsRegistry:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(3)
        registry.counter("messages_total", {"link": "A->B"}).inc(5)
        registry.counter("messages_total", {"link": "B->A"}).inc(2)
        registry.gauge("in_flight").set(4)
        registry.histogram("latency").record(0.25)
        registry.histogram("latency").record(3.0)
        registry.timeline.track("in_flight", lambda: 4.0)
        registry.timeline.maybe_sample(2.0)
        return registry

    def test_families_are_identity_per_label_set(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", {"x": "1"}) \
            is registry.counter("a", {"x": "1"})
        assert registry.counter("a") is not registry.counter("a", {"x": "1"})
        # Label order never splits a series.
        assert registry.gauge("g", {"x": "1", "y": "2"}) \
            is registry.gauge("g", {"y": "2", "x": "1"})

    def test_snapshot_is_json_round_trippable(self):
        registry = self.make_registry()
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["schema"] == 1
        rows = snapshot["counters"]["messages_total"]
        assert [row["labels"] for row in rows] == [{"link": "A->B"},
                                                   {"link": "B->A"}]
        assert [row["value"] for row in rows] == [5, 2]

    def test_restore_round_trip(self):
        registry = self.make_registry()
        restored = MetricsRegistry()
        restored.restore(registry.snapshot())
        assert restored.snapshot() == registry.snapshot()

    def test_merge_sums_counters_gauges_and_histograms(self):
        merged = MetricsRegistry()
        merged.merge(self.make_registry().snapshot())
        merged.merge(self.make_registry().snapshot())
        snapshot = merged.snapshot()
        assert snapshot["counters"]["jobs_total"][0]["value"] == 6
        assert snapshot["gauges"]["in_flight"][0]["value"] == 8
        histogram = merged.histogram("latency")
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.5)
        # Timelines tick-align and sum too.
        assert merged.timeline.series["in_flight"] == [
            (0.0, 8.0), (1.0, 8.0), (2.0, 8.0)]

    def test_mid_run_flush_equals_one_shot_totals(self):
        # A registry flushed mid-run (snapshot, then keep counting) must
        # aggregate to the same totals as an unflushed run.
        running = MetricsRegistry()
        running.counter("jobs_total").inc(2)
        flushed = running.snapshot()
        running.restore(MetricsRegistry().snapshot())
        running.counter("jobs_total").inc(3)
        aggregate = MetricsRegistry()
        aggregate.merge(flushed)
        aggregate.merge(running.snapshot())
        assert aggregate.counter("jobs_total").value == 5

    def test_empty_registry_exports_empty_exposition(self):
        registry = MetricsRegistry()
        assert registry.prometheus_text() == ""
        # And an empty snapshot merges as a no-op.
        populated = self.make_registry()
        before = populated.snapshot()
        populated.merge(registry.snapshot())
        assert populated.snapshot() == before

    def test_prometheus_text_structure(self):
        text = self.make_registry().prometheus_text()
        lines = text.splitlines()
        assert "# TYPE repro_jobs_total counter" in lines
        assert "# TYPE repro_in_flight gauge" in lines
        assert "# TYPE repro_latency histogram" in lines
        assert 'repro_messages_total{link="A->B"} 5' in lines
        assert "repro_in_flight 4" in lines
        # Histogram buckets are cumulative and end at +Inf == count.
        buckets = [line for line in lines
                   if line.startswith("repro_latency_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == 'repro_latency_bucket{le="+Inf"} 2'
        assert "repro_latency_count 2" in lines
        assert text.endswith("\n")
