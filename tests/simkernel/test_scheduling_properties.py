"""Randomized property tests for kernel scheduling order.

The kernel's contract (which both determinism and the golden-trace
conformance digests rest on): events fire in ``(time, priority,
seeded-tie, insertion)`` order — a total order — and ``peek()`` always
names the exact time of the next ``step()``.  These tests drive arbitrary
interleavings of ``schedule``/timeout creation/cancellation generated from
a seed and check the contract holds for every interleaving, with and
without ``tie_seed`` perturbation.
"""

from __future__ import annotations

import random

import pytest

from repro.simkernel.events import Event, NORMAL, URGENT
from repro.simkernel.kernel import EmptySchedule, Infinity, Kernel

SEEDS = [1, 7, 2026, 424242]


def random_schedule(kernel: Kernel, rng: random.Random, events: list) -> None:
    """Perform one random scheduling operation against ``kernel``."""
    choice = rng.random()
    if choice < 0.45:
        event = Event(kernel)
        event._ok = True
        event._value = None
        kernel.schedule(event,
                        priority=rng.choice((URGENT, NORMAL)),
                        delay=rng.choice((0.0, 0.0, rng.uniform(0.0, 5.0))))
        events.append(event)
    elif choice < 0.75:
        events.append(kernel.timeout(rng.uniform(0.0, 3.0)))
    elif events:
        # "Cancel": detach a previously scheduled event's callbacks.  The
        # entry stays in the heap (the kernel has no removal API) but must
        # fire as a no-op without disturbing the order of the rest.
        victim = rng.choice(events)
        if victim.callbacks is not None:
            victim.callbacks.clear()


def drain(kernel: Kernel):
    """Step the kernel dry; return the (time, priority, eid) trace and check
    that peek() always announces the next step's exact time."""
    trace = []
    kernel.tracer = lambda when, priority, eid, _event: \
        trace.append((when, priority, eid))
    while True:
        announced = kernel.peek()
        before = len(trace)
        try:
            kernel.step()
        except EmptySchedule:
            assert announced == Infinity
            break
        assert len(trace) == before + 1, "step() must process one event"
        when, _priority, _eid = trace[-1]
        assert announced == when, "peek() must match the next step's time"
        assert kernel.now == when
    return trace


def interleave(seed: int, tie_seed=None, operations: int = 120):
    rng = random.Random(seed)
    kernel = Kernel(tie_seed=tie_seed)
    events: list = []
    for _ in range(operations):
        random_schedule(kernel, rng, events)
    return drain(kernel)


class TestTotalOrderWithoutTieSeed:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_time_priority_insertion_order(self, seed):
        trace = interleave(seed)
        # ~75% of the 120 random operations schedule something.
        assert len(trace) >= 60
        for earlier, later in zip(trace, trace[1:]):
            assert earlier[:2] <= later[:2], \
                "time then priority must be non-decreasing"
            if earlier[:2] == later[:2]:
                # Without a tie seed, equal (time, priority) resolves by
                # insertion order (the event id is the insertion counter).
                assert earlier[2] < later[2]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_replay_is_byte_identical(self, seed):
        assert interleave(seed) == interleave(seed)


class TestTotalOrderWithTieSeed:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_time_priority_still_dominate(self, seed):
        trace = interleave(seed, tie_seed=99)
        for earlier, later in zip(trace, trace[1:]):
            assert earlier[:2] <= later[:2], \
                "tie perturbation must never reorder across (time, priority)"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_tie_seed_is_deterministic(self, seed):
        assert interleave(seed, tie_seed=5) == interleave(seed, tie_seed=5)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tie_seed_only_permutes_within_tie_groups(self, seed):
        baseline = interleave(seed)
        perturbed = interleave(seed, tie_seed=5)
        assert sorted(baseline) == sorted(perturbed), \
            "perturbation must be a permutation of the same events"
        # Grouped by (time, priority), both runs process the same event
        # sets; only the order inside a group may differ.
        from collections import defaultdict
        groups_a, groups_b = defaultdict(list), defaultdict(list)
        for when, priority, eid in baseline:
            groups_a[(when, priority)].append(eid)
        for when, priority, eid in perturbed:
            groups_b[(when, priority)].append(eid)
        assert {k: sorted(v) for k, v in groups_a.items()} == \
            {k: sorted(v) for k, v in groups_b.items()}


class TestPeekContract:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("tie_seed", [None, 3])
    def test_peek_is_nondestructive_and_exact(self, seed, tie_seed):
        # drain() asserts peek()==step time at every step; this variant
        # additionally checks repeated peeks do not consume anything.
        rng = random.Random(seed)
        kernel = Kernel(tie_seed=tie_seed)
        events: list = []
        for _ in range(60):
            random_schedule(kernel, rng, events)
        for _ in range(5):
            assert kernel.peek() == kernel.peek()
        drain(kernel)
        assert kernel.peek() == Infinity
