"""Regression tests for step-tracer chaining and fault isolation.

A step tracer is observation plumbing; it must never be able to kill a
simulation.  These tests pin the chaining semantics of
``add_tracer``/``remove_tracer`` and the raise-once-then-disabled
hardening on both the ``step()`` and ``run()`` execution paths.
"""

from __future__ import annotations

import logging

import pytest

from repro.simkernel import EmptySchedule, Kernel


def ticks(kernel: Kernel, count: int):
    for _ in range(count):
        yield kernel.timeout(1.0)


def run_ticks(kernel: Kernel, count: int = 3) -> None:
    kernel.process(ticks(kernel, count))
    kernel.run()


class TestTracerChaining:
    def test_single_hook_is_bound_directly(self):
        kernel = Kernel()
        seen = []
        hook = lambda when, priority, eid, event: seen.append(eid)
        kernel.add_tracer(hook)
        # One hook pays the old single-slot cost: no composite wrapper.
        assert kernel.tracer is hook
        run_ticks(kernel)
        assert seen

    def test_two_hooks_fan_out_in_order(self):
        kernel = Kernel()
        calls = []
        kernel.add_tracer(lambda *args: calls.append("first"))
        kernel.add_tracer(lambda *args: calls.append("second"))
        assert kernel.tracer is not None
        run_ticks(kernel, count=1)
        assert calls[:2] == ["first", "second"]
        assert calls.count("first") == calls.count("second")

    def test_directly_assigned_hook_is_adopted_into_the_chain(self):
        kernel = Kernel()
        calls = []
        kernel.tracer = lambda *args: calls.append("direct")
        kernel.add_tracer(lambda *args: calls.append("added"))
        run_ticks(kernel, count=1)
        assert "direct" in calls and "added" in calls
        assert calls.index("direct") < calls.index("added")

    def test_remove_rebinds_the_survivor_directly(self):
        kernel = Kernel()
        keep = lambda *args: None
        drop = lambda *args: None
        kernel.add_tracer(keep)
        kernel.add_tracer(drop)
        kernel.remove_tracer(drop)
        assert kernel.tracer is keep
        kernel.remove_tracer(keep)
        assert kernel.tracer is None

    def test_remove_handles_unknown_and_directly_assigned_hooks(self):
        kernel = Kernel()
        kernel.remove_tracer(lambda *args: None)  # never installed: no-op
        direct = lambda *args: None
        kernel.tracer = direct
        kernel.remove_tracer(direct)
        assert kernel.tracer is None


class _RecordingHandler(logging.Handler):
    """Collects records on the kernel logger itself.

    Attached directly rather than via root-level capture (caplog) so
    the assertions hold no matter how earlier tests configured the
    parent ``repro`` logger.
    """

    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def kernel_log():
    logger = logging.getLogger("repro.simkernel.kernel")
    handler = _RecordingHandler()
    old_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.ERROR)
    yield handler.records
    logger.removeHandler(handler)
    logger.setLevel(old_level)


class TestTracerHardening:
    def make_raising(self, calls):
        def bad(when, priority, eid, event):
            calls.append(eid)
            raise RuntimeError("observer bug")
        return bad

    def test_raising_hook_is_disabled_not_fatal_in_run(self, kernel_log):
        kernel = Kernel()
        calls = []
        kernel.add_tracer(self.make_raising(calls))
        run_ticks(kernel, count=5)  # must not raise
        # Called exactly once, then disabled — and logged exactly once.
        assert len(calls) == 1
        assert kernel.tracer is None
        messages = [record for record in kernel_log
                    if "disabling" in record.getMessage()]
        assert len(messages) == 1

    def test_raising_hook_is_disabled_not_fatal_in_step(self):
        kernel = Kernel()
        calls = []
        kernel.add_tracer(self.make_raising(calls))
        kernel.process(ticks(kernel, 3))
        with pytest.raises(EmptySchedule):
            while True:
                kernel.step()
        assert len(calls) == 1
        assert kernel.tracer is None

    def test_healthy_hooks_survive_a_failing_sibling(self, kernel_log):
        kernel = Kernel()
        healthy_calls = []
        bad_calls = []
        kernel.add_tracer(self.make_raising(bad_calls))
        kernel.add_tracer(lambda *args: healthy_calls.append(args))
        run_ticks(kernel, count=3)
        assert len(bad_calls) == 1
        assert len(kernel_log) == 1
        # The healthy hook kept firing for every step, including the one
        # on which its sibling blew up.
        assert len(healthy_calls) > 1
        assert healthy_calls[0] is not None

    def test_tracer_failure_does_not_defuse_the_traced_event(self):
        # The traced event's own outcome must be unaffected: a failing
        # process still surfaces its exception to run() even when the
        # tracer died on the very same step.
        kernel = Kernel()
        kernel.add_tracer(self.make_raising([]))

        def failing(kernel):
            yield kernel.timeout(1.0)
            raise ValueError("real simulation failure")

        kernel.process(failing(kernel))
        with pytest.raises(ValueError, match="real simulation failure"):
            kernel.run()
