"""Unit tests for the discrete-event simulation kernel and its events."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Event,
    Interrupt,
    Kernel,
    StopProcess,
    Timeout,
)


# ----------------------------------------------------------------------
# Clock and scheduling
# ----------------------------------------------------------------------
class TestClock:
    def test_initial_time_defaults_to_zero(self):
        assert Kernel().now == 0.0

    def test_initial_time_can_be_set(self):
        assert Kernel(initial_time=42.5).now == 42.5

    def test_timeout_advances_clock(self, kernel):
        def waiter(kernel):
            yield kernel.timeout(3.5)

        kernel.process(waiter(kernel))
        kernel.run()
        assert kernel.now == 3.5

    def test_peek_returns_next_event_time(self, kernel):
        kernel.timeout(7.0)
        assert kernel.peek() == 7.0

    def test_peek_on_empty_queue_is_infinite(self, kernel):
        assert kernel.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, kernel):
        with pytest.raises(EmptySchedule):
            kernel.step()

    def test_events_fire_in_timestamp_order(self, kernel):
        order = []

        def proc(kernel, name, delay):
            yield kernel.timeout(delay)
            order.append(name)

        kernel.process(proc(kernel, "late", 5))
        kernel.process(proc(kernel, "early", 1))
        kernel.process(proc(kernel, "middle", 3))
        kernel.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_fire_in_creation_order(self, kernel):
        order = []

        def proc(kernel, name):
            yield kernel.timeout(1)
            order.append(name)

        for name in ("a", "b", "c"):
            kernel.process(proc(kernel, name))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time_stops_clock_there(self, kernel):
        def ticker(kernel):
            while True:
                yield kernel.timeout(1)

        kernel.process(ticker(kernel))
        kernel.run(until=10)
        assert kernel.now == 10

    def test_run_until_past_time_raises(self, kernel):
        def waiter(kernel):
            yield kernel.timeout(5)

        kernel.process(waiter(kernel))
        kernel.run()
        with pytest.raises(ValueError):
            kernel.run(until=1)

    def test_run_until_event_returns_its_value(self, kernel):
        def producer(kernel):
            yield kernel.timeout(2)
            return "result"

        process = kernel.process(producer(kernel))
        assert kernel.run(until=process) == "result"

    def test_run_until_never_fired_event_raises(self, kernel):
        event = kernel.event()
        with pytest.raises(RuntimeError):
            kernel.run(until=event)

    def test_negative_timeout_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.timeout(-1)


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
class TestEvent:
    def test_event_starts_untriggered(self, kernel):
        event = kernel.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, kernel):
        with pytest.raises(RuntimeError):
            kernel.event().value

    def test_ok_before_trigger_raises(self, kernel):
        with pytest.raises(RuntimeError):
            kernel.event().ok

    def test_succeed_sets_value(self, kernel):
        event = kernel.event().succeed("payload")
        assert event.triggered and event.ok
        assert event.value == "payload"

    def test_double_succeed_raises(self, kernel):
        event = kernel.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, kernel):
        with pytest.raises(TypeError):
            kernel.event().fail("not an exception")

    def test_failed_event_propagates_to_waiter(self, kernel):
        caught = []

        def waiter(kernel, event):
            try:
                yield event
            except ValueError as error:
                caught.append(error)

        event = kernel.event()
        kernel.process(waiter(kernel, event))
        event.fail(ValueError("boom"))
        kernel.run()
        assert len(caught) == 1

    def test_unhandled_failure_surfaces_from_run(self, kernel):
        event = kernel.event()
        event.fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            kernel.run()

    def test_timeout_carries_value(self, kernel):
        values = []

        def waiter(kernel):
            values.append((yield kernel.timeout(1, value="hello")))

        kernel.process(waiter(kernel))
        kernel.run()
        assert values == ["hello"]


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
class TestConditions:
    def test_all_of_waits_for_every_event(self, kernel):
        finished = []

        def worker(kernel, delay, name):
            yield kernel.timeout(delay)
            return name

        def waiter(kernel):
            p1 = kernel.process(worker(kernel, 2, "a"))
            p2 = kernel.process(worker(kernel, 5, "b"))
            yield kernel.all_of([p1, p2])
            finished.append(kernel.now)

        kernel.process(waiter(kernel))
        kernel.run()
        assert finished == [5]

    def test_any_of_fires_at_first_event(self, kernel):
        finished = []

        def worker(kernel, delay):
            yield kernel.timeout(delay)

        def waiter(kernel):
            p1 = kernel.process(worker(kernel, 2))
            p2 = kernel.process(worker(kernel, 5))
            yield kernel.any_of([p1, p2])
            finished.append(kernel.now)

        kernel.process(waiter(kernel))
        kernel.run()
        assert finished == [2]

    def test_all_of_result_maps_events_to_values(self, kernel):
        results = {}

        def worker(kernel, delay, name):
            yield kernel.timeout(delay)
            return name

        def waiter(kernel):
            p1 = kernel.process(worker(kernel, 1, "a"))
            p2 = kernel.process(worker(kernel, 2, "b"))
            value = yield kernel.all_of([p1, p2])
            results["a"] = value[p1]
            results["b"] = value[p2]

        kernel.process(waiter(kernel))
        kernel.run()
        assert results == {"a": "a", "b": "b"}

    def test_empty_all_of_fires_immediately(self, kernel):
        condition = kernel.all_of([])
        assert condition.triggered

    def test_condition_fails_if_member_fails(self, kernel):
        caught = []

        def waiter(kernel, event):
            try:
                yield kernel.all_of([event, kernel.timeout(10)])
            except KeyError as error:
                caught.append(error)

        event = kernel.event()
        kernel.process(waiter(kernel, event))
        event.fail(KeyError("member failed"))
        kernel.run()
        assert len(caught) == 1

    def test_condition_rejects_foreign_kernel_events(self, kernel):
        other = Kernel()
        with pytest.raises(ValueError):
            kernel.all_of([other.event()])


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------
class TestProcess:
    def test_process_return_value_is_event_value(self, kernel):
        def worker(kernel):
            yield kernel.timeout(1)
            return 99

        process = kernel.process(worker(kernel))
        kernel.run()
        assert process.value == 99

    def test_process_waiting_on_process(self, kernel):
        def inner(kernel):
            yield kernel.timeout(3)
            return "inner-result"

        def outer(kernel):
            result = yield kernel.process(inner(kernel))
            return f"outer saw {result}"

        process = kernel.process(outer(kernel))
        kernel.run()
        assert process.value == "outer saw inner-result"

    def test_non_generator_rejected(self, kernel):
        with pytest.raises(TypeError):
            kernel.process(lambda: None)

    def test_yielding_non_event_fails_process(self, kernel):
        def bad(kernel):
            yield 42

        kernel.process(bad(kernel))
        with pytest.raises(RuntimeError, match="non-event"):
            kernel.run()

    def test_interrupt_delivers_cause(self, kernel):
        causes = []

        def victim(kernel):
            try:
                yield kernel.timeout(100)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)

        def attacker(kernel, target):
            yield kernel.timeout(1)
            target.interrupt("reason")

        target = kernel.process(victim(kernel))
        kernel.process(attacker(kernel, target))
        kernel.run()
        assert causes == ["reason"]
        assert kernel.now >= 1

    def test_interrupt_detaches_from_original_target(self, kernel):
        log = []

        def victim(kernel):
            try:
                yield kernel.timeout(10)
            except Interrupt:
                log.append("interrupted")
            yield kernel.timeout(1)
            log.append("resumed")

        def attacker(kernel, target):
            yield kernel.timeout(1)
            target.interrupt()

        target = kernel.process(victim(kernel))
        kernel.process(attacker(kernel, target))
        kernel.run()
        assert log == ["interrupted", "resumed"]
        assert kernel.now == 10  # the stale timeout still fires harmlessly

    def test_interrupting_finished_process_raises(self, kernel):
        def quick(kernel):
            yield kernel.timeout(0)

        process = kernel.process(quick(kernel))
        kernel.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_process_cannot_interrupt_itself(self, kernel):
        errors = []

        def selfish(kernel):
            process = kernel.active_process
            try:
                process.interrupt()
            except RuntimeError as error:
                errors.append(error)
            yield kernel.timeout(0)

        kernel.process(selfish(kernel))
        kernel.run()
        assert len(errors) == 1

    def test_process_failure_propagates_to_waiter(self, kernel):
        observed = []

        def failing(kernel):
            yield kernel.timeout(1)
            raise ValueError("process blew up")

        def waiter(kernel):
            try:
                yield kernel.process(failing(kernel))
            except ValueError as error:
                observed.append(str(error))

        kernel.process(waiter(kernel))
        kernel.run()
        assert observed == ["process blew up"]

    def test_stop_process_exception_ends_process_cleanly(self, kernel):
        def worker(kernel):
            yield kernel.timeout(1)
            raise StopProcess("early-result")

        process = kernel.process(worker(kernel))
        kernel.run()
        assert process.value == "early-result"
