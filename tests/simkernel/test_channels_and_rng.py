"""Unit and property tests for Store/Mailbox/CyclicBuffer and seeded RNG."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import CyclicBuffer, Kernel, Mailbox, SeededStreams, Store


class TestStore:
    def test_put_then_get_returns_item(self, kernel):
        store = Store(kernel)
        received = []

        def consumer(kernel, store):
            received.append((yield store.get()))

        kernel.process(consumer(kernel, store))
        store.put("item")
        kernel.run()
        assert received == ["item"]

    def test_get_blocks_until_put(self, kernel):
        store = Store(kernel)
        received = []

        def consumer(kernel, store):
            item = yield store.get()
            received.append((kernel.now, item))

        def producer(kernel, store):
            yield kernel.timeout(4)
            store.put("late")

        kernel.process(consumer(kernel, store))
        kernel.process(producer(kernel, store))
        kernel.run()
        assert received == [(4.0, "late")]

    def test_fifo_ordering(self, kernel):
        store = Store(kernel)
        received = []

        def consumer(kernel, store):
            for _ in range(3):
                received.append((yield store.get()))

        kernel.process(consumer(kernel, store))
        for item in ("first", "second", "third"):
            store.put(item)
        kernel.run()
        assert received == ["first", "second", "third"]

    def test_capacity_blocks_puts(self, kernel):
        store = Store(kernel, capacity=1)
        completions = []

        def producer(kernel, store):
            yield store.put("a")
            completions.append(("a", kernel.now))
            yield store.put("b")
            completions.append(("b", kernel.now))

        def consumer(kernel, store):
            yield kernel.timeout(5)
            yield store.get()

        kernel.process(producer(kernel, store))
        kernel.process(consumer(kernel, store))
        kernel.run()
        assert completions[0][0] == "a"
        assert completions[1] == ("b", 5.0)

    def test_invalid_capacity_rejected(self, kernel):
        import pytest
        with pytest.raises(ValueError):
            Store(kernel, capacity=0)

    def test_len_and_peek_all(self, kernel):
        store = Store(kernel)
        store.put("x")
        store.put("y")
        kernel.run()
        assert len(store) == 2
        assert store.peek_all() == ["x", "y"]


class TestMailbox:
    def test_deliver_is_nonblocking_and_wakes_getter(self, kernel):
        mailbox = Mailbox(kernel)
        received = []

        def consumer(kernel, mailbox):
            received.append((yield mailbox.get()))

        kernel.process(consumer(kernel, mailbox))
        mailbox.deliver("ping")
        kernel.run()
        assert received == ["ping"]

    def test_drain_empties_buffer(self, kernel):
        mailbox = Mailbox(kernel)
        for i in range(5):
            mailbox.deliver(i)
        assert mailbox.drain() == [0, 1, 2, 3, 4]
        assert mailbox.drain() == []
        assert len(mailbox) == 0


class TestCyclicBuffer:
    def test_overwrites_oldest_when_full(self, kernel):
        buffer = CyclicBuffer(kernel, capacity=3)
        for i in range(5):
            buffer.deliver(i)
        assert buffer.peek_all() == [2, 3, 4]
        assert buffer.overwritten == [0, 1]

    def test_no_overwrite_below_capacity(self, kernel):
        buffer = CyclicBuffer(kernel, capacity=10)
        for i in range(5):
            buffer.deliver(i)
        assert buffer.overwritten == []


class TestSeededStreams:
    def test_same_seed_same_sequence(self):
        a = SeededStreams(7)
        b = SeededStreams(7)
        assert [a.random("x") for _ in range(10)] == \
               [b.random("x") for _ in range(10)]

    def test_different_streams_are_independent(self):
        streams = SeededStreams(7)
        first = [streams.random("latency") for _ in range(5)]
        # Interleaving another stream must not change the first one.
        streams2 = SeededStreams(7)
        mixed = []
        for _ in range(5):
            mixed.append(streams2.random("latency"))
            streams2.random("faults")
        assert first == mixed

    def test_different_seeds_differ(self):
        assert [SeededStreams(1).random("x") for _ in range(3)] != \
               [SeededStreams(2).random("x") for _ in range(3)]

    def test_uniform_respects_bounds(self):
        streams = SeededStreams(3)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 5.0)
            assert 2.0 <= value <= 5.0

    def test_choice_picks_from_sequence(self):
        streams = SeededStreams(3)
        options = ["a", "b", "c"]
        for _ in range(20):
            assert streams.choice("c", options) in options

    @given(seed=st.integers(min_value=0, max_value=2**32),
           name=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_streams_are_reproducible(self, seed, name):
        first = SeededStreams(seed).random(name)
        second = SeededStreams(seed).random(name)
        assert first == second


class TestStoreProperties:
    @given(items=st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_fifo_preserved_for_any_sequence(self, items):
        kernel = Kernel()
        store = Store(kernel)
        received = []

        def consumer(kernel, store, count):
            for _ in range(count):
                received.append((yield store.get()))

        kernel.process(consumer(kernel, store, len(items)))
        for item in items:
            store.put(item)
        kernel.run()
        assert received == items
