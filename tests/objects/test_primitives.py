"""Focused unit tests for the ``objects/`` primitives.

The transactional workload (``repro.workload.transactional``) leans on
behaviours the original suite did not pin directly: queue-aware deadlock
avoidance (a wait-for cycle that closes through a lock's FIFO queue, not
just its current holders), the oracle views over held/queued locks, and
the exact lock-release and state-restoration guarantees of commit, abort
and recovery after abort.
"""

import pytest

from repro.objects import (
    DeadlockError,
    LockManager,
    LockMode,
    TransactionManager,
    TransactionStatus,
    UndoFailure,
)
from repro.simkernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


# ----------------------------------------------------------------------
# Lock conflict and release ordering
# ----------------------------------------------------------------------
class TestLockOrdering:
    def test_queued_requests_grant_in_fifo_order_across_releases(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("obj", "t1", LockMode.EXCLUSIVE)
        w2 = locks.acquire("obj", "t2", LockMode.SHARED)
        w3 = locks.acquire("obj", "t3", LockMode.SHARED)
        w4 = locks.acquire("obj", "t4", LockMode.EXCLUSIVE)
        assert not (w2.triggered or w3.triggered or w4.triggered)
        locks.release_all("t1")
        # Both compatible shared requests promote together; the exclusive
        # one stays behind them.
        assert w2.triggered and w3.triggered and not w4.triggered
        locks.release_all("t2")
        assert not w4.triggered
        locks.release_all("t3")
        assert w4.triggered

    def test_all_holders_and_all_waiters_views(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        locks.acquire("b", "t2", LockMode.SHARED)
        locks.acquire("b", "t3", LockMode.SHARED)
        locks.acquire("a", "t4", LockMode.EXCLUSIVE)
        assert locks.all_holders() == {
            "a": [("t1", "exclusive")],
            "b": [("t2", "shared"), ("t3", "shared")],
        }
        assert locks.all_waiters() == {"a": ["t4"]}
        locks.release_all("t1")
        locks.release_all("t4")
        assert "a" not in locks.all_holders()
        assert locks.all_waiters() == {}


# ----------------------------------------------------------------------
# Deadlock avoidance, including cycles through the queues
# ----------------------------------------------------------------------
class TestDeadlockAvoidance:
    def test_direct_cycle_through_holders_refused(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        locks.acquire("b", "t2", LockMode.EXCLUSIVE)
        locks.acquire("b", "t1", LockMode.EXCLUSIVE)
        doomed = locks.acquire("a", "t2", LockMode.EXCLUSIVE)
        assert doomed.triggered and not doomed.ok
        assert isinstance(doomed.value, DeadlockError)
        doomed.defused = True

    def test_cycle_through_queue_refused(self, kernel):
        """A cycle that closes via a queued-ahead request, not a holder.

        t3 queues on ``a`` behind t2, so t3 waits on t2 even though t2
        holds nothing on ``a`` yet.  When t2 then requests ``b`` (held by
        t3), granting the wait would close the cycle t2 → t3 → t2.  A
        holders-only wait-for graph misses this and hangs both forever.
        """
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        locks.acquire("b", "t3", LockMode.EXCLUSIVE)
        locks.acquire("a", "t2", LockMode.EXCLUSIVE)   # queued behind t1
        locks.acquire("a", "t3", LockMode.EXCLUSIVE)   # queued behind t2
        doomed = locks.acquire("b", "t2", LockMode.EXCLUSIVE)
        assert doomed.triggered and not doomed.ok
        assert isinstance(doomed.value, DeadlockError)
        doomed.defused = True

    def test_stale_edges_dropped_after_release(self, kernel):
        """Edges recorded while waiting must not outlive the conflict."""
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        waiting = locks.acquire("a", "t2", LockMode.EXCLUSIVE)
        locks.release_all("t1")            # t2 promoted, edge t2→t1 gone
        assert waiting.triggered and waiting.ok
        locks.acquire("b", "t1", LockMode.EXCLUSIVE)
        # t1's request for a waits on t2 only; no phantom cycle.
        again = locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        assert not again.triggered
        locks.release_all("t2")
        assert again.triggered and again.ok

    def test_reader_reader_queue_is_not_refused(self, kernel):
        """A shared request behind shared holders/waiters is no deadlock.

        t1 holds ``a`` shared and waits on ``b`` (held exclusively by
        t3).  When t3 then requests ``a`` *shared* behind a queue that
        contains only another shared request, nothing actually blocks it:
        FIFO promotion grants the whole run of readers together.  The old
        mode-blind wait-for rebuild counted the compatible entries as
        blockers, manufactured the cycle t3 → t1 → t3 and refused the
        request as a phantom deadlock.
        """
        locks = LockManager(kernel)
        locks.acquire("a", "th", LockMode.EXCLUSIVE)
        locks.acquire("a", "t4", LockMode.SHARED)        # queued behind th
        locks.acquire("b", "t3", LockMode.EXCLUSIVE)
        locks.acquire("b", "t4", LockMode.EXCLUSIVE)     # t4 waits on t3
        request = locks.acquire("a", "t3", LockMode.SHARED)
        assert not request.triggered, "reader/reader queue must queue, " \
            "not be refused as a phantom deadlock"
        # Promotion grants both queued readers together once th releases.
        locks.release_all("th")
        assert request.triggered and request.ok
        holders = dict(locks.holders("a"))
        assert holders["t3"] is LockMode.SHARED
        assert holders["t4"] is LockMode.SHARED

    def test_upgrade_cycle_still_refused(self, kernel):
        """Two shared holders both upgrading is a genuine deadlock."""
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.SHARED)
        locks.acquire("a", "t2", LockMode.SHARED)
        upgrade = locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        assert not upgrade.triggered     # waits on the other reader
        doomed = locks.acquire("a", "t2", LockMode.EXCLUSIVE)
        assert doomed.triggered and not doomed.ok
        assert isinstance(doomed.value, DeadlockError)
        doomed.defused = True

    def test_wait_for_rebuild_is_mode_aware(self, kernel):
        """Only incompatible holders/queued-ahead produce wait-for edges."""
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.SHARED)
        locks.acquire("a", "t2", LockMode.EXCLUSIVE)     # queued
        locks.acquire("a", "t3", LockMode.SHARED)        # queued behind t2
        locks._rebuild_wait_for()
        assert locks._wait_for["t2"] == {"t1"}
        # t3 waits on the exclusive ahead of it, not on the shared holder.
        assert locks._wait_for["t3"] == {"t2"}

    def test_refused_request_leaves_no_queue_entry(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        locks.acquire("b", "t2", LockMode.EXCLUSIVE)
        locks.acquire("b", "t1", LockMode.EXCLUSIVE)
        doomed = locks.acquire("a", "t2", LockMode.EXCLUSIVE)
        doomed.defused = True
        assert locks.all_waiters() == {"b": ["t1"]}
        locks.release_all("t2")            # t2 aborts after the refusal
        assert locks.all_holders()["b"] == [("t1", "exclusive")]


# ----------------------------------------------------------------------
# Transaction commit/rollback round-trips and recovery after abort
# ----------------------------------------------------------------------
class TestTransactionRoundTrips:
    def make_manager(self):
        manager = TransactionManager(Kernel())
        manager.create_object("acct", {"value": 0})
        return manager

    def test_commit_round_trip_with_locks(self):
        manager = self.make_manager()
        txn = manager.begin("T")
        grant = txn.lock("acct", LockMode.EXCLUSIVE)
        assert grant.triggered and grant.ok
        txn.write("acct", "value", txn.read("acct", "value") + 1)
        txn.commit()
        assert txn.status is TransactionStatus.COMMITTED
        assert manager.object("acct").committed_value("value") == 1
        assert not manager.locks.is_locked("acct")
        assert txn in manager.finished and not manager.active

    def test_abort_rolls_back_and_releases_locks(self):
        manager = self.make_manager()
        txn = manager.begin("T")
        txn.lock("acct", LockMode.EXCLUSIVE)
        waiter = manager.begin("U")
        blocked = waiter.lock("acct", LockMode.EXCLUSIVE)
        txn.write("acct", "value", 99)
        assert txn.abort() is TransactionStatus.ABORTED
        assert manager.object("acct").committed_value("value") == 0
        # The abort released the lock, so the blocked transaction runs.
        assert blocked.triggered and blocked.ok
        assert manager.locks.holders("acct") == [
            (waiter.transaction_id, LockMode.EXCLUSIVE)]

    def test_recovery_after_abort_reuses_clean_state(self):
        """A fresh transaction after an abort sees the restored state."""
        manager = self.make_manager()
        doomed = manager.begin("T")
        doomed.lock("acct", LockMode.EXCLUSIVE)
        doomed.write("acct", "value", 123)
        doomed.abort()
        retry = manager.begin("T")
        grant = retry.lock("acct", LockMode.EXCLUSIVE)
        assert grant.triggered and grant.ok
        assert retry.read("acct", "value") == 0
        retry.write("acct", "value", 1)
        retry.commit()
        assert manager.object("acct").committed_value("value") == 1
        assert manager.object("acct").version == 1     # one commit only

    def test_failed_undo_surfaces_and_still_releases_locks(self):
        manager = self.make_manager()
        txn = manager.begin("T")
        txn.lock("acct", LockMode.EXCLUSIVE)
        txn.write("acct", "value", 7)
        manager.object("acct").inject_undo_fault(txn.transaction_id)
        assert txn.abort() is TransactionStatus.FAILED_UNDO
        assert txn.failed_objects == ["acct"]
        assert not manager.locks.is_locked("acct")
