"""Tests for external atomic objects, locks, transactions and recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects import (
    AtomicObject,
    DeadlockError,
    IntegrityError,
    LockManager,
    LockMode,
    RecoveryPlan,
    Transaction,
    TransactionError,
    TransactionManager,
    TransactionStatus,
    UndoFailure,
    outcome_to_interface_exception,
)
from repro.simkernel import Kernel


# ----------------------------------------------------------------------
# AtomicObject
# ----------------------------------------------------------------------
class TestAtomicObject:
    def test_read_committed_state(self):
        obj = AtomicObject("acct", {"balance": 10})
        assert obj.read("t1", "balance") == 10

    def test_missing_field_raises(self):
        obj = AtomicObject("acct", {"balance": 10})
        with pytest.raises(KeyError):
            obj.read("t1", "missing")

    def test_write_is_isolated_until_commit(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.write("t1", "balance", 99)
        assert obj.read("t1", "balance") == 99          # own write visible
        assert obj.read("t2", "balance") == 10          # other txn isolated
        assert obj.committed_value("balance") == 10

    def test_commit_installs_working_copy(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.write("t1", "balance", 99)
        obj.commit("t1")
        assert obj.committed_value("balance") == 99
        assert obj.version == 1

    def test_commit_without_writes_is_noop(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.commit("t1")
        assert obj.version == 0

    def test_undo_discards_working_copy(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.write("t1", "balance", 99)
        obj.undo("t1")
        obj.commit("t1")
        assert obj.committed_value("balance") == 10

    def test_injected_undo_fault_raises(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.write("t1", "balance", 99)
        obj.inject_undo_fault("t1")
        with pytest.raises(UndoFailure):
            obj.undo("t1")

    def test_global_undo_fault_applies_to_all_transactions(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.inject_undo_fault()
        obj.write("whatever", "balance", 1)
        with pytest.raises(UndoFailure):
            obj.undo("whatever")
        obj.clear_undo_fault()
        obj.undo("whatever")

    def test_invariant_blocks_bad_commit(self):
        obj = AtomicObject("acct", {"balance": 10},
                           invariant=lambda s: s["balance"] >= 0)
        obj.write("t1", "balance", -5)
        with pytest.raises(IntegrityError):
            obj.commit("t1")
        # The working copy survives so the caller can still undo.
        assert obj.dirty("t1")

    def test_repair_replaces_working_state(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.write("t1", "balance", -5)
        obj.repair("t1", lambda state: {**state, "balance": 0})
        obj.commit("t1")
        assert obj.committed_value("balance") == 0

    def test_repair_must_return_dict(self):
        obj = AtomicObject("acct", {"balance": 10})
        with pytest.raises(TypeError):
            obj.repair("t1", lambda state: None)

    def test_check_integrity_with_and_without_transaction(self):
        obj = AtomicObject("acct", {"balance": 10},
                           invariant=lambda s: s["balance"] >= 0)
        assert obj.check_integrity()
        obj.write("t1", "balance", -1)
        assert not obj.check_integrity("t1")
        assert obj.check_integrity()           # committed state still fine

    def test_notifications_are_recorded(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.notify_exception("t1", "Transfer", "insufficient_funds", now=3.0)
        assert len(obj.notifications) == 1
        assert obj.notifications[0].exception_name == "insufficient_funds"

    def test_history_tracks_committed_versions(self):
        obj = AtomicObject("acct", {"balance": 10})
        for value in (20, 30):
            obj.write("t", "balance", value)
            obj.commit("t")
        balances = [state["balance"] for state in obj.history]
        assert balances == [10, 20, 30]

    def test_operations_log(self):
        obj = AtomicObject("acct", {"balance": 10})
        obj.read("t1", "balance")
        obj.write("t1", "balance", 5)
        assert [op.operation for op in obj.operations] == ["read", "write"]

    @given(writes=st.lists(st.integers(), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_last_committed_write_wins(self, writes):
        obj = AtomicObject("acct", {"value": 0})
        for i, value in enumerate(writes):
            obj.write(f"t{i}", "value", value)
            obj.commit(f"t{i}")
        assert obj.committed_value("value") == writes[-1]
        assert obj.version == len(writes)

    @given(value=st.integers())
    @settings(max_examples=50, deadline=None)
    def test_property_undo_always_restores_committed_state(self, value):
        obj = AtomicObject("acct", {"value": 123})
        obj.write("t", "value", value)
        obj.undo("t")
        assert obj.committed_value("value") == 123
        assert not obj.dirty("t")


# ----------------------------------------------------------------------
# LockManager
# ----------------------------------------------------------------------
class TestLockManager:
    def test_exclusive_lock_granted_immediately(self, kernel):
        locks = LockManager(kernel)
        event = locks.acquire("obj", "t1", LockMode.EXCLUSIVE)
        assert event.triggered and event.ok
        assert locks.is_locked("obj")

    def test_shared_locks_are_compatible(self, kernel):
        locks = LockManager(kernel)
        assert locks.acquire("obj", "t1", LockMode.SHARED).triggered
        assert locks.acquire("obj", "t2", LockMode.SHARED).triggered
        assert len(locks.holders("obj")) == 2

    def test_exclusive_conflicts_with_shared(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("obj", "t1", LockMode.SHARED)
        waiting = locks.acquire("obj", "t2", LockMode.EXCLUSIVE)
        assert not waiting.triggered
        locks.release_all("t1")
        assert waiting.triggered

    def test_release_promotes_waiters_in_order(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("obj", "t1", LockMode.EXCLUSIVE)
        w2 = locks.acquire("obj", "t2", LockMode.EXCLUSIVE)
        w3 = locks.acquire("obj", "t3", LockMode.EXCLUSIVE)
        locks.release_all("t1")
        assert w2.triggered and not w3.triggered
        locks.release_all("t2")
        assert w3.triggered

    def test_lock_upgrade_same_transaction(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("obj", "t1", LockMode.SHARED)
        upgraded = locks.acquire("obj", "t1", LockMode.EXCLUSIVE)
        assert upgraded.triggered
        assert locks.holders("obj") == [("t1", LockMode.EXCLUSIVE)]

    def test_deadlock_detected_and_refused(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("a", "t1", LockMode.EXCLUSIVE)
        locks.acquire("b", "t2", LockMode.EXCLUSIVE)
        locks.acquire("b", "t1", LockMode.EXCLUSIVE)   # t1 waits on t2
        doomed = locks.acquire("a", "t2", LockMode.EXCLUSIVE)  # would cycle
        assert doomed.triggered and not doomed.ok
        assert isinstance(doomed.value, DeadlockError)
        doomed.defused = True

    def test_release_clears_pending_requests(self, kernel):
        locks = LockManager(kernel)
        locks.acquire("obj", "t1", LockMode.EXCLUSIVE)
        locks.acquire("obj", "t2", LockMode.EXCLUSIVE)
        locks.release_all("t2")          # t2 gives up while still queued
        locks.release_all("t1")
        assert not locks.is_locked("obj")


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------
class TestTransactions:
    def make_manager(self):
        manager = TransactionManager(Kernel())
        manager.create_object("acct", {"balance": 100})
        manager.create_object("log", {"entries": 0})
        return manager

    def test_commit_applies_all_writes(self):
        manager = self.make_manager()
        txn = manager.begin("Transfer")
        txn.write("acct", "balance", 50)
        txn.write("log", "entries", 1)
        txn.commit()
        assert txn.status is TransactionStatus.COMMITTED
        assert manager.object("acct").committed_value("balance") == 50
        assert manager.object("log").committed_value("entries") == 1

    def test_abort_rolls_back_all_writes(self):
        manager = self.make_manager()
        txn = manager.begin("Transfer")
        txn.write("acct", "balance", 50)
        status = txn.abort()
        assert status is TransactionStatus.ABORTED
        assert manager.object("acct").committed_value("balance") == 100

    def test_abort_with_failed_undo_reports_failed_undo(self):
        manager = self.make_manager()
        txn = manager.begin("Transfer")
        txn.write("acct", "balance", 50)
        manager.object("acct").inject_undo_fault(txn.transaction_id)
        status = txn.abort()
        assert status is TransactionStatus.FAILED_UNDO
        assert txn.failed_objects == ["acct"]

    def test_double_abort_is_idempotent(self):
        manager = self.make_manager()
        txn = manager.begin("A")
        txn.write("acct", "balance", 1)
        assert txn.abort() is TransactionStatus.ABORTED
        assert txn.abort() is TransactionStatus.ABORTED

    def test_use_after_commit_rejected(self):
        manager = self.make_manager()
        txn = manager.begin("A")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.write("acct", "balance", 1)
        with pytest.raises(TransactionError):
            txn.read("acct", "balance")

    def test_notify_exception_reaches_all_touched_objects(self):
        manager = self.make_manager()
        txn = manager.begin("A")
        txn.write("acct", "balance", 1)
        txn.write("log", "entries", 1)
        txn.notify_exception("fault")
        assert manager.object("acct").notifications[0].exception_name == "fault"
        assert manager.object("log").notifications[0].exception_name == "fault"

    def test_unknown_object_raises(self):
        manager = self.make_manager()
        txn = manager.begin("A")
        with pytest.raises(KeyError):
            txn.read("missing", "x")

    def test_duplicate_object_registration_rejected(self):
        manager = self.make_manager()
        with pytest.raises(ValueError):
            manager.create_object("acct")

    def test_manager_tracks_active_and_finished(self):
        manager = self.make_manager()
        txn = manager.begin("A")
        assert txn.transaction_id in manager.active
        txn.commit()
        assert txn.transaction_id not in manager.active
        assert txn in manager.finished

    def test_outcome_to_interface_exception_mapping(self):
        manager = self.make_manager()
        committed = manager.begin("A")
        committed.commit()
        assert outcome_to_interface_exception(committed) is None

        aborted = manager.begin("B")
        aborted.write("acct", "balance", 1)
        aborted.abort()
        assert outcome_to_interface_exception(aborted) == "mu"

        failed = manager.begin("C")
        failed.write("acct", "balance", 1)
        manager.object("acct").inject_undo_fault(failed.transaction_id)
        failed.abort()
        assert outcome_to_interface_exception(failed) == "failure"

    def test_outcome_of_active_transaction_raises(self):
        manager = self.make_manager()
        txn = manager.begin("A")
        with pytest.raises(ValueError):
            outcome_to_interface_exception(txn)


# ----------------------------------------------------------------------
# Recovery plans
# ----------------------------------------------------------------------
class TestRecoveryPlan:
    def make_transaction(self):
        manager = TransactionManager(Kernel())
        manager.create_object("acct", {"balance": 100})
        manager.create_object("audit", {"entries": 0})
        txn = manager.begin("A")
        txn.write("acct", "balance", -10)
        txn.write("audit", "entries", 5)
        return manager, txn

    def test_forward_recovery_repairs_object(self):
        manager, txn = self.make_transaction()
        plan = RecoveryPlan().repair("acct",
                                     lambda state: {**state, "balance": 0})
        outcome = plan.execute(txn)
        assert outcome.complete
        txn.commit()
        assert manager.object("acct").committed_value("balance") == 0

    def test_backward_recovery_rolls_back_object(self):
        manager, txn = self.make_transaction()
        outcome = RecoveryPlan().rollback("audit").execute(txn)
        assert outcome.complete
        txn.commit()
        assert manager.object("audit").committed_value("entries") == 0

    def test_failed_step_reported_not_raised(self):
        manager, txn = self.make_transaction()
        manager.object("acct").inject_undo_fault(txn.transaction_id)
        outcome = RecoveryPlan().rollback("acct").rollback("audit").execute(txn)
        assert not outcome.complete
        assert outcome.failed == ["acct"]
        assert outcome.succeeded == ["audit"]

    def test_forward_step_without_function_rejected(self):
        from repro.objects.recovery import RecoveryKind, RecoveryStep
        step = RecoveryStep("acct", RecoveryKind.FORWARD, None)
        with pytest.raises(ValueError):
            step.validate()

    def test_leave_step_touches_nothing(self):
        manager, txn = self.make_transaction()
        outcome = RecoveryPlan().leave("acct").execute(txn)
        assert outcome.complete
