"""Merge algebra of the telemetry types.

A :class:`~repro.workload.sharding.ShardedPool` relies on merged
telemetry being independent of how the work was sharded and in which
order the shards were folded in.  These are randomized-split property
tests of exactly that contract, for every mergeable telemetry type:

* **union equality** — merging per-shard telemetry equals telemetry
  recorded over the undivided sample set, for every random partition;
* **commutativity** — folding shards in any order gives the same result
  (lists as multisets, float sums approximately);
* **associativity** — grouping does not matter: ``(a + b) + c``
  equals ``a + (b + c)``.

Integer counters must match exactly; floating-point sums only to
``pytest.approx`` (addition order differs between groupings); event and
outcome lists as multisets (concatenation order differs between fold
orders).
"""

import random

import pytest

from repro.analysis.histograms import LatencyHistogram
from repro.analysis.metrics import ActionOutcome, RunMetrics
from repro.net.network import MessageStatistics
from repro.workload.admission import AdmissionStats

SEEDS = (7, 2026, 90125)
SHARD_COUNTS = (1, 2, 3, 5)


def partition(items, n_shards, rng):
    """Randomly assign every item to one of ``n_shards`` buckets."""
    buckets = [[] for _ in range(n_shards)]
    for item in items:
        buckets[rng.randrange(n_shards)].append(item)
    return buckets


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
def histogram_of(samples):
    histogram = LatencyHistogram()
    histogram.record_many(samples)
    return histogram


def assert_histograms_match(merged, reference):
    ours, theirs = merged.snapshot(), reference.snapshot()
    assert ours["buckets"] == theirs["buckets"]
    assert ours["count"] == theirs["count"]
    assert ours["min"] == theirs["min"]
    assert ours["max"] == theirs["max"]
    assert ours["sum"] == pytest.approx(theirs["sum"])


class TestLatencyHistogramMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_merged_shards_equal_union(self, seed, n_shards):
        rng = random.Random(seed)
        samples = [rng.expovariate(1.0) for _ in range(400)]
        merged = LatencyHistogram()
        for bucket in partition(samples, n_shards, rng):
            merged.merge(histogram_of(bucket))
        assert_histograms_match(merged, histogram_of(samples))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_commutative(self, seed):
        rng = random.Random(seed)
        a, b = (histogram_of([rng.expovariate(1.0) for _ in range(100)])
                for _ in range(2))
        ab, ba = LatencyHistogram(), LatencyHistogram()
        ab.merge(a), ab.merge(b)
        ba.merge(b), ba.merge(a)
        assert ab.snapshot() == ba.snapshot()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_associative(self, seed):
        rng = random.Random(seed)
        a, b, c = (histogram_of([rng.expovariate(1.0) for _ in range(60)])
                   for _ in range(3))
        left = LatencyHistogram()
        left.merge(a), left.merge(b)
        left_c = LatencyHistogram()
        left_c.merge(left), left_c.merge(c)
        bc = LatencyHistogram()
        bc.merge(b), bc.merge(c)
        right = LatencyHistogram()
        right.merge(a), right.merge(bc)
        assert_histograms_match(left_c, right)

    def test_merge_accepts_snapshots_and_instances(self):
        a = histogram_of([0.5, 1.0])
        via_snapshot, via_instance = LatencyHistogram(), LatencyHistogram()
        via_snapshot.merge(a.snapshot())
        via_instance.merge(a)
        assert via_snapshot.snapshot() == via_instance.snapshot()


# ----------------------------------------------------------------------
# RunMetrics
# ----------------------------------------------------------------------
EXCEPTIONS = ("EDiskFull", "ETimeout", "EBadInput")
ACTIONS = ("Serve", "Transfer")


def random_metrics_events(rng, n_events):
    """A list of (method-name, args) records to replay into RunMetrics."""
    events = []
    for index in range(n_events):
        kind = rng.randrange(6)
        exception = rng.choice(EXCEPTIONS)
        action = rng.choice(ACTIONS)
        thread = f"W{rng.randrange(8):03d}"
        now = round(rng.uniform(0.0, 100.0), 3)
        if kind == 0:
            events.append(("record_raise", (thread, action, exception, now)))
        elif kind == 1:
            events.append(("record_suspension", (thread, action, now)))
        elif kind == 2:
            events.append(("record_resolution",
                           (thread, action, exception, now)))
        elif kind == 3:
            events.append(("record_handler", (thread, action, exception, now)))
        elif kind == 4:
            events.append(("record_abortion", (thread, action, now)))
        else:
            events.append(("record_signal", (thread, action, exception, now)))
    return events


def metrics_of(events, outcomes=()):
    metrics = RunMetrics()
    for method, args in events:
        getattr(metrics, method)(*args)
    for outcome in outcomes:
        metrics.record_outcome(outcome)
    return metrics


def canonical(metrics):
    """Snapshot with order-insensitive lists (merge concatenates)."""
    snapshot = metrics.snapshot()
    snapshot["events"] = sorted(snapshot["events"])
    snapshot["action_outcomes"] = sorted(
        snapshot["action_outcomes"],
        key=lambda o: sorted(o.items(), key=lambda kv: (kv[0], repr(kv[1]))))
    return snapshot


class TestRunMetricsMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_merged_shards_equal_union(self, seed, n_shards):
        rng = random.Random(seed)
        events = random_metrics_events(rng, 300)
        merged = RunMetrics()
        for bucket in partition(events, n_shards, rng):
            merged.merge(metrics_of(bucket).snapshot())
        assert canonical(merged) == canonical(metrics_of(events))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_commutative_and_associative(self, seed):
        rng = random.Random(seed)
        parts = [metrics_of(random_metrics_events(rng, 80)).snapshot()
                 for _ in range(3)]
        folds = []
        for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
            folded = RunMetrics()
            for index in order:
                folded.merge(parts[index])
            folds.append(canonical(folded))
        assert folds[0] == folds[1] == folds[2]

    def test_outcomes_merge_as_multiset(self):
        first = ActionOutcome("Serve", "success", started_at=0.0,
                              finished_at=1.0)
        second = ActionOutcome("Serve", "failed", started_at=1.0,
                               finished_at=3.0)
        merged = RunMetrics()
        merged.merge(metrics_of((), [first]).snapshot())
        merged.merge(metrics_of((), [second]).snapshot())
        union = metrics_of((), [second, first])
        assert canonical(merged) == canonical(union)
        assert merged.summary()["outcomes"] == {"success": 1, "failed": 1}


# ----------------------------------------------------------------------
# MessageStatistics
# ----------------------------------------------------------------------
NODES = ("n0", "n1", "n2", "n3")
PAYLOADS = ("Exception", "Commit", "Suspended", "AppMessage")


def random_message_snapshot(rng, n_messages):
    """A plausible per-shard MessageStatistics snapshot (all integers)."""
    stats = {"sent": 0, "delivered": 0, "dropped": 0,
             "by_type": {}, "by_link": {}}
    for _ in range(n_messages):
        payload = rng.choice(PAYLOADS)
        source, destination = rng.sample(NODES, 2)
        stats["sent"] += 1
        stats["by_type"][payload] = stats["by_type"].get(payload, 0) + 1
        link = f"{source}->{destination}"
        stats["by_link"][link] = stats["by_link"].get(link, 0) + 1
        if rng.random() < 0.9:
            stats["delivered"] += 1
        else:
            stats["dropped"] += 1
    return stats


def fold(snapshots):
    stats = MessageStatistics()
    for snapshot in snapshots:
        stats.merge(snapshot)
    return stats.snapshot()


class TestMessageStatisticsMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_merged_shards_equal_union(self, seed, n_shards):
        rng = random.Random(seed)
        shards = [random_message_snapshot(rng, rng.randrange(10, 60))
                  for _ in range(n_shards)]
        merged = fold(shards)
        assert merged["sent"] == sum(s["sent"] for s in shards)
        assert merged["delivered"] == sum(s["delivered"] for s in shards)
        assert merged["dropped"] == sum(s["dropped"] for s in shards)
        for name in {name for s in shards for name in s["by_type"]}:
            assert merged["by_type"][name] == \
                sum(s["by_type"].get(name, 0) for s in shards)
        for link in {link for s in shards for link in s["by_link"]}:
            assert merged["by_link"][link] == \
                sum(s["by_link"].get(link, 0) for s in shards)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_commutative_and_associative(self, seed):
        rng = random.Random(seed)
        parts = [random_message_snapshot(rng, 40) for _ in range(3)]
        orders = ((0, 1, 2), (2, 0, 1), (1, 2, 0))
        folds = [fold([parts[i] for i in order]) for order in orders]
        assert folds[0] == folds[1] == folds[2]


# ----------------------------------------------------------------------
# AdmissionStats (tallies sum; watermarks max)
# ----------------------------------------------------------------------
def random_admission_snapshot(rng):
    snapshot = {name: rng.randrange(100) for name in AdmissionStats.TALLIES}
    snapshot["max_queue_length"] = rng.randrange(32)
    snapshot["max_in_flight"] = rng.randrange(64)
    return snapshot


class TestAdmissionStatsMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_tallies_sum_and_watermarks_max(self, seed, n_shards):
        rng = random.Random(seed)
        shards = [random_admission_snapshot(rng) for _ in range(n_shards)]
        merged = AdmissionStats()
        for shard in shards:
            merged.merge(shard)
        for name in AdmissionStats.TALLIES:
            assert getattr(merged, name) == sum(s[name] for s in shards)
        assert merged.max_queue_length == \
            max(s["max_queue_length"] for s in shards)
        assert merged.max_in_flight == max(s["max_in_flight"] for s in shards)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fold_order_does_not_matter(self, seed):
        rng = random.Random(seed)
        parts = [random_admission_snapshot(rng) for _ in range(3)]
        snapshots = []
        for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
            folded = AdmissionStats()
            for index in order:
                folded.merge(parts[index])
            snapshots.append(folded.snapshot())
        assert snapshots[0] == snapshots[1] == snapshots[2]
