"""Tests for the analytic bounds and the run-metrics collector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ActionOutcome,
    RunMetrics,
    TimingParameters,
    campbell_randell_reference_messages,
    campbell_randell_resolution_calls,
    exception_graph_level_size,
    lemma1_completion_bound,
    messages_all_exceptions,
    messages_single_exception,
    romanovsky96_messages,
    signalling_messages_simple,
    signalling_messages_worst_case,
    theorem2_worst_case_messages,
)


class TestFormulas:
    def test_values_from_the_paper_for_n3(self):
        assert messages_single_exception(3) == 8
        assert messages_all_exceptions(3) == 8
        assert theorem2_worst_case_messages(3, 1) == 8
        assert romanovsky96_messages(3) == 18
        assert campbell_randell_resolution_calls(3) == 6
        assert signalling_messages_simple(3) == 6
        assert signalling_messages_worst_case(3) == 12

    def test_single_and_all_are_equal_for_every_n(self):
        for n in range(2, 20):
            assert messages_single_exception(n) == messages_all_exceptions(n)
            assert messages_single_exception(n) == n * n - 1

    def test_nesting_multiplies_theorem2(self):
        assert theorem2_worst_case_messages(4, 3) == 3 * 15
        assert theorem2_worst_case_messages(4, 0) == 15   # level floor of 1

    def test_minimum_thread_count_enforced(self):
        for function in (messages_single_exception, messages_all_exceptions,
                         romanovsky96_messages, signalling_messages_simple):
            with pytest.raises(ValueError):
                function(1)

    def test_graph_level_sizes_match_binomials(self):
        assert exception_graph_level_size(5, 0) == 5
        assert exception_graph_level_size(5, 1) == 10
        assert exception_graph_level_size(5, 2) == 10
        assert exception_graph_level_size(5, 4) == 1
        assert exception_graph_level_size(5, 7) == 0

    def test_cr_reference_is_cubic(self):
        assert campbell_randell_reference_messages(3) == 27
        assert campbell_randell_reference_messages(4, max_nesting=2) == 128

    @given(n=st.integers(min_value=2, max_value=50),
           nesting=st.integers(min_value=0, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_property_ordering_of_algorithm_costs(self, n, nesting):
        """Ours ≤ Romanovsky-96 ≤ Campbell–Randell for every N and nesting."""
        ours = theorem2_worst_case_messages(n, nesting)
        r96 = romanovsky96_messages(n, nesting)
        cr = campbell_randell_reference_messages(n, nesting)
        assert ours <= r96 <= cr


class TestLemma1:
    def test_formula_matches_hand_computation(self):
        params = TimingParameters(t_msg_max=0.2, t_resolution=0.3,
                                  t_abort=0.1, t_handler_max=0.5,
                                  max_nesting=1)
        expected = (2 * 1 + 3) * 0.2 + 1 * 0.1 + (1 + 1) * (0.3 + 0.5)
        assert lemma1_completion_bound(params) == pytest.approx(expected)

    def test_no_nesting_reduces_to_three_message_rounds(self):
        params = TimingParameters(1.0, 0.0, 0.0, 0.0, max_nesting=0)
        assert lemma1_completion_bound(params) == pytest.approx(3.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimingParameters(-1, 0, 0, 0)
        with pytest.raises(ValueError):
            TimingParameters(0, 0, 0, 0, max_nesting=-1)

    @given(t_msg=st.floats(0, 10), t_res=st.floats(0, 10),
           t_abort=st.floats(0, 10), handler=st.floats(0, 10),
           nesting=st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_property_bound_monotone_in_every_parameter(self, t_msg, t_res,
                                                        t_abort, handler,
                                                        nesting):
        base = TimingParameters(t_msg, t_res, t_abort, handler, nesting)
        bumped = TimingParameters(t_msg + 1, t_res, t_abort, handler, nesting)
        deeper = TimingParameters(t_msg, t_res, t_abort, handler, nesting + 1)
        assert lemma1_completion_bound(bumped) >= lemma1_completion_bound(base)
        assert lemma1_completion_bound(deeper) >= lemma1_completion_bound(base)


class TestRunMetrics:
    def test_counters_accumulate(self):
        metrics = RunMetrics()
        metrics.record_raise("T1", "A", "fault", 1.0)
        metrics.record_suspension("T2", "A", 1.1)
        metrics.record_resolution("T3", "A", "fault", 1.5)
        metrics.record_handler("T1", "A", "fault", 1.6)
        metrics.record_abortion("T2", "B", 1.7)
        metrics.record_signal("T1", "A", "eps", 2.0)
        assert metrics.exceptions_raised == 1
        assert metrics.suspensions == 1
        assert metrics.resolutions == 1
        assert metrics.handlers_invoked == 1
        assert metrics.abortions == 1
        assert metrics.signalled == {"eps": 1}
        assert len(metrics.events) == 6

    def test_outcomes_and_summary(self):
        metrics = RunMetrics()
        metrics.record_outcome(ActionOutcome("A", "success", None, 0.0, 2.0))
        metrics.record_outcome(ActionOutcome("A", "recovered", None, 2.0, 5.0))
        metrics.record_outcome(ActionOutcome("B", "failed", "failure", 0.0, 1.0))
        assert len(metrics.outcomes_for("A")) == 2
        assert metrics.outcomes_for("A")[1].duration == 3.0
        summary = metrics.summary()
        assert summary["outcomes"]["success"] == 1
        assert summary["outcomes"]["failed"] == 1


class TestBoundsEdgeCases:
    """The least-tested corners of analysis/bounds.py."""

    def test_n2_boundary_values(self):
        assert messages_single_exception(2) == 3
        assert messages_all_exceptions(2) == 3
        assert theorem2_worst_case_messages(2, 1) == 3
        assert romanovsky96_messages(2) == 6
        assert signalling_messages_simple(2) == 2
        assert signalling_messages_worst_case(2) == 4
        assert campbell_randell_resolution_calls(2) == 0

    def test_theorem2_and_references_reject_small_n(self):
        for function in (theorem2_worst_case_messages,
                         campbell_randell_reference_messages):
            with pytest.raises(ValueError):
                function(1, 1)
        with pytest.raises(ValueError):
            campbell_randell_resolution_calls(1)
        with pytest.raises(ValueError):
            signalling_messages_worst_case(1)

    def test_graph_level_size_edges(self):
        # Level below zero or beyond n-1: empty by definition.
        assert exception_graph_level_size(5, -1) == 0
        assert exception_graph_level_size(5, 5) == 0
        # A single primitive has exactly its own level 0.
        assert exception_graph_level_size(1, 0) == 1
        assert exception_graph_level_size(1, 1) == 0
        with pytest.raises(ValueError):
            exception_graph_level_size(0, 0)

    def test_graph_level_sizes_sum_to_the_powerset(self):
        # Sum over all levels = 2^n - 1 nonempty subsets (untruncated graph).
        for n in (1, 3, 6):
            total = sum(exception_graph_level_size(n, level)
                        for level in range(n))
            assert total == 2 ** n - 1

    def test_lemma1_zero_everything_is_zero(self):
        assert lemma1_completion_bound(
            TimingParameters(0, 0, 0, 0, max_nesting=0)) == 0.0


class TestRunMetricsSummaryEdgeCases:
    def test_summary_with_no_outcomes(self):
        summary = RunMetrics().summary()
        assert summary["outcomes"] == {}
        assert summary["exceptions_raised"] == 0
        assert summary["signalled"] == {}

    def test_summary_with_mixed_outcome_kinds(self):
        metrics = RunMetrics()
        for outcome in ("success", "recovered", "undone", "failed",
                        "signalled", "aborted_by_enclosing", "success"):
            metrics.record_outcome(ActionOutcome("A", outcome))
        summary = metrics.summary()
        assert summary["outcomes"] == {
            "success": 2, "recovered": 1, "undone": 1, "failed": 1,
            "signalled": 1, "aborted_by_enclosing": 1,
        }

    def test_outcomes_for_unknown_action_is_empty(self):
        assert RunMetrics().outcomes_for("nope") == []


class TestRunMetricsSnapshot:
    """snapshot()/restore()/merge(), mirroring MessageStatistics."""

    @staticmethod
    def populated():
        metrics = RunMetrics()
        metrics.record_raise("T1", "A", "fault", 1.0)
        metrics.record_resolution("T2", "A", "fault", 1.5)
        metrics.record_handler("T1", "A", "fault", 1.6)
        metrics.record_abortion("T2", "B", 1.7)
        metrics.record_suspension("T3", "A", 1.8)
        metrics.record_signal("T1", "A", "eps", 2.0)
        metrics.record_outcome(ActionOutcome("A", "recovered", None, 0.0, 2.5))
        return metrics

    def test_snapshot_is_json_serializable(self):
        import json
        json.dumps(self.populated().snapshot())

    def test_round_trip_restores_everything(self):
        original = self.populated()
        rebuilt = RunMetrics()
        rebuilt.restore(original.snapshot())
        assert rebuilt.snapshot() == original.snapshot()
        assert rebuilt.summary() == original.summary()
        assert rebuilt.outcomes_for("A")[0].duration == 2.5

    def test_restore_discards_previous_state(self):
        metrics = self.populated()
        metrics.restore(RunMetrics().snapshot())
        assert metrics.snapshot() == RunMetrics().snapshot()

    def test_merge_aggregates_per_shard_metrics(self):
        shard_a = self.populated()
        shard_b = self.populated()
        shard_b.record_raise("T9", "C", "other", 9.0)
        union = RunMetrics()
        union.merge(shard_a.snapshot())
        union.merge(shard_b.snapshot())
        assert union.exceptions_raised == 3
        assert union.exceptions_by_name == {"fault": 2, "other": 1}
        assert union.resolutions == 2
        assert union.abortions == 2
        assert union.signalled == {"eps": 2}
        assert len(union.action_outcomes) == 2
        assert len(union.events) == len(shard_a.events) + len(shard_b.events)

    def test_merge_accepts_live_outcome_objects(self):
        metrics = RunMetrics()
        metrics.merge({"action_outcomes": [ActionOutcome("A", "success")]})
        assert metrics.action_outcomes[0].action == "A"

    def test_action_outcome_dict_round_trip(self):
        outcome = ActionOutcome("A", "signalled", "eps", 1.0, 3.5)
        assert ActionOutcome.from_dict(outcome.to_dict()) == outcome
