"""Tests for the analytic bounds and the run-metrics collector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ActionOutcome,
    RunMetrics,
    TimingParameters,
    campbell_randell_reference_messages,
    campbell_randell_resolution_calls,
    exception_graph_level_size,
    lemma1_completion_bound,
    messages_all_exceptions,
    messages_single_exception,
    romanovsky96_messages,
    signalling_messages_simple,
    signalling_messages_worst_case,
    theorem2_worst_case_messages,
)


class TestFormulas:
    def test_values_from_the_paper_for_n3(self):
        assert messages_single_exception(3) == 8
        assert messages_all_exceptions(3) == 8
        assert theorem2_worst_case_messages(3, 1) == 8
        assert romanovsky96_messages(3) == 18
        assert campbell_randell_resolution_calls(3) == 6
        assert signalling_messages_simple(3) == 6
        assert signalling_messages_worst_case(3) == 12

    def test_single_and_all_are_equal_for_every_n(self):
        for n in range(2, 20):
            assert messages_single_exception(n) == messages_all_exceptions(n)
            assert messages_single_exception(n) == n * n - 1

    def test_nesting_multiplies_theorem2(self):
        assert theorem2_worst_case_messages(4, 3) == 3 * 15
        assert theorem2_worst_case_messages(4, 0) == 15   # level floor of 1

    def test_minimum_thread_count_enforced(self):
        for function in (messages_single_exception, messages_all_exceptions,
                         romanovsky96_messages, signalling_messages_simple):
            with pytest.raises(ValueError):
                function(1)

    def test_graph_level_sizes_match_binomials(self):
        assert exception_graph_level_size(5, 0) == 5
        assert exception_graph_level_size(5, 1) == 10
        assert exception_graph_level_size(5, 2) == 10
        assert exception_graph_level_size(5, 4) == 1
        assert exception_graph_level_size(5, 7) == 0

    def test_cr_reference_is_cubic(self):
        assert campbell_randell_reference_messages(3) == 27
        assert campbell_randell_reference_messages(4, max_nesting=2) == 128

    @given(n=st.integers(min_value=2, max_value=50),
           nesting=st.integers(min_value=0, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_property_ordering_of_algorithm_costs(self, n, nesting):
        """Ours ≤ Romanovsky-96 ≤ Campbell–Randell for every N and nesting."""
        ours = theorem2_worst_case_messages(n, nesting)
        r96 = romanovsky96_messages(n, nesting)
        cr = campbell_randell_reference_messages(n, nesting)
        assert ours <= r96 <= cr


class TestLemma1:
    def test_formula_matches_hand_computation(self):
        params = TimingParameters(t_msg_max=0.2, t_resolution=0.3,
                                  t_abort=0.1, t_handler_max=0.5,
                                  max_nesting=1)
        expected = (2 * 1 + 3) * 0.2 + 1 * 0.1 + (1 + 1) * (0.3 + 0.5)
        assert lemma1_completion_bound(params) == pytest.approx(expected)

    def test_no_nesting_reduces_to_three_message_rounds(self):
        params = TimingParameters(1.0, 0.0, 0.0, 0.0, max_nesting=0)
        assert lemma1_completion_bound(params) == pytest.approx(3.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimingParameters(-1, 0, 0, 0)
        with pytest.raises(ValueError):
            TimingParameters(0, 0, 0, 0, max_nesting=-1)

    @given(t_msg=st.floats(0, 10), t_res=st.floats(0, 10),
           t_abort=st.floats(0, 10), handler=st.floats(0, 10),
           nesting=st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_property_bound_monotone_in_every_parameter(self, t_msg, t_res,
                                                        t_abort, handler,
                                                        nesting):
        base = TimingParameters(t_msg, t_res, t_abort, handler, nesting)
        bumped = TimingParameters(t_msg + 1, t_res, t_abort, handler, nesting)
        deeper = TimingParameters(t_msg, t_res, t_abort, handler, nesting + 1)
        assert lemma1_completion_bound(bumped) >= lemma1_completion_bound(base)
        assert lemma1_completion_bound(deeper) >= lemma1_completion_bound(base)


class TestRunMetrics:
    def test_counters_accumulate(self):
        metrics = RunMetrics()
        metrics.record_raise("T1", "A", "fault", 1.0)
        metrics.record_suspension("T2", "A", 1.1)
        metrics.record_resolution("T3", "A", "fault", 1.5)
        metrics.record_handler("T1", "A", "fault", 1.6)
        metrics.record_abortion("T2", "B", 1.7)
        metrics.record_signal("T1", "A", "eps", 2.0)
        assert metrics.exceptions_raised == 1
        assert metrics.suspensions == 1
        assert metrics.resolutions == 1
        assert metrics.handlers_invoked == 1
        assert metrics.abortions == 1
        assert metrics.signalled == {"eps": 1}
        assert len(metrics.events) == 6

    def test_outcomes_and_summary(self):
        metrics = RunMetrics()
        metrics.record_outcome(ActionOutcome("A", "success", None, 0.0, 2.0))
        metrics.record_outcome(ActionOutcome("A", "recovered", None, 2.0, 5.0))
        metrics.record_outcome(ActionOutcome("B", "failed", "failure", 0.0, 1.0))
        assert len(metrics.outcomes_for("A")) == 2
        assert metrics.outcomes_for("A")[1].duration == 3.0
        summary = metrics.summary()
        assert summary["outcomes"]["success"] == 1
        assert summary["outcomes"]["failed"] == 1
