"""Tests for the log-bucket latency histogram."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LatencyHistogram


class TestRecording:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.quantile(0.5) is None
        assert histogram.summary()["p999"] is None
        assert len(histogram) == 0

    def test_exact_scalars(self):
        histogram = LatencyHistogram()
        histogram.record_many([1.0, 2.0, 3.0])
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.1)

    def test_underflow_and_overflow_clamp(self):
        histogram = LatencyHistogram(min_value=1.0, growth=2.0,
                                     bucket_count=4)
        histogram.record(0.0)       # below min_value -> bucket 0
        histogram.record(1e9)       # beyond the last edge -> last bucket
        assert histogram.buckets[0] == 1
        assert histogram.buckets[-1] == 1
        assert histogram.count == 2
        assert histogram.min == 0.0 and histogram.max == 1e9

    def test_single_sample_quantiles_are_exact(self):
        histogram = LatencyHistogram()
        histogram.record(0.7)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.7

    def test_quantile_bounds_validated(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    @pytest.mark.parametrize("kwargs", [
        {"min_value": 0.0}, {"growth": 1.0}, {"bucket_count": 0},
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            LatencyHistogram(**kwargs)


class TestQuantileAccuracy:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=1e-3, max_value=1e3,
                              allow_nan=False), min_size=1, max_size=200))
    def test_quantile_within_one_bucket_of_truth(self, samples):
        import math
        histogram = LatencyHistogram()
        histogram.record_many(samples)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.99):
            rank = max(1, math.ceil(q * len(ordered)))
            truth = ordered[rank - 1]
            estimate = histogram.quantile(q)
            # The estimate is a bucket upper edge clamped to [min, max]: it
            # stays within one growth factor of the true order statistic.
            assert estimate <= truth * histogram.growth * (1 + 1e-9)
            assert estimate >= truth / histogram.growth * (1 - 1e-9)

    def test_percentile_names(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)
        assert set(histogram.percentiles()) == {"p50", "p90", "p99", "p999"}


class TestMergeAndSnapshot:
    def test_snapshot_restore_round_trip(self):
        histogram = LatencyHistogram()
        histogram.record_many([0.01, 0.5, 2.0, 40.0])
        snapshot = histogram.snapshot()
        json.dumps(snapshot)  # JSON-serializable
        rebuilt = LatencyHistogram.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot
        assert rebuilt.quantile(0.5) == histogram.quantile(0.5)

    def test_merge_equals_union(self):
        union = LatencyHistogram()
        shard_a, shard_b = LatencyHistogram(), LatencyHistogram()
        for value in (0.1, 0.2, 0.4, 0.8):
            shard_a.record(value)
            union.record(value)
        for value in (1.6, 3.2, 6.4):
            shard_b.record(value)
            union.record(value)
        shard_a.merge(shard_b)
        assert shard_a.snapshot() == union.snapshot()

    def test_merge_accepts_snapshots(self):
        shard = LatencyHistogram()
        shard.record(1.0)
        target = LatencyHistogram()
        target.merge(shard.snapshot())
        assert target.count == 1 and target.max == 1.0

    def test_merge_into_empty_and_from_empty(self):
        empty = LatencyHistogram()
        loaded = LatencyHistogram()
        loaded.record(2.0)
        empty.merge(loaded)
        assert empty.count == 1 and empty.min == 2.0
        loaded.merge(LatencyHistogram())
        assert loaded.count == 1 and loaded.min == 2.0

    def test_incompatible_configurations_rejected(self):
        histogram = LatencyHistogram(min_value=1e-3)
        other = LatencyHistogram(min_value=1e-2)
        with pytest.raises(ValueError):
            histogram.merge(other)
        with pytest.raises(ValueError):
            histogram.restore(other.snapshot())
